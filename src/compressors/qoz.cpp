#include "compressors/qoz.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compressors/core/driver.hpp"
#include "compressors/tuning.hpp"
#include "predict/multilevel.hpp"

namespace qip {
namespace {

/// Candidate (kind, order) pairs for the per-level interpolation tuner:
/// cubic/linear crossed with slowest-first and fastest-first orders.
std::vector<LevelPlan> interp_candidates(int rank) {
  std::array<std::int8_t, kMaxRank> fwd{0, 1, 2, 3};
  std::array<std::int8_t, kMaxRank> rev{0, 1, 2, 3};
  for (int a = 0; a < rank; ++a) rev[a] = static_cast<std::int8_t>(rank - 1 - a);
  std::vector<LevelPlan> cands;
  for (InterpKind k : {InterpKind::kCubic, InterpKind::kLinear}) {
    for (const auto& o : {fwd, rev}) {
      LevelPlan lp;
      lp.kind = k;
      lp.order = o;
      cands.push_back(lp);
    }
  }
  return cands;
}

/// Stage policy: the per-level tuner picks the plan, then the shared
/// interpolation stage pipeline does everything else.
struct QoZCodec {
  using Config = QoZConfig;
  using Artifacts = IndexArtifacts;
  static constexpr CompressorId kId = CompressorId::kQoZ;
  static constexpr const char* kName = "qoz";

  template <class T>
  static void encode(const T* data, const Dims& dims, const Config& cfg,
                     ContainerWriter& out, Artifacts* artifacts) {
    const int levels = interpolation_level_count(dims);

    // Per-level interpolation tuning (coarse levels are nearly free to
    // sample; fine levels are subsampled harder).
    std::vector<LevelPlan> per_level(static_cast<std::size_t>(levels));
    if (cfg.tune_interp) {
      const auto cands = interp_candidates(dims.rank());
      for (int l = 1; l <= levels; ++l) {
        const std::size_t step = l == 1 ? 5 : (l == 2 ? 3 : 1);
        double best_cost = std::numeric_limits<double>::infinity();
        LevelPlan best = cands.front();
        for (const auto& cand : cands) {
          const double cost = InterpEngine<T>::level_cost_sample(
              data, dims, l, cand, cfg.error_bound, step);
          if (cost < best_cost) {
            best_cost = cost;
            best = cand;
          }
        }
        per_level[static_cast<std::size_t>(l - 1)] = best;
      }
    }

    double alpha = cfg.alpha, beta = cfg.beta;
    if (cfg.tune_level_eb) {
      std::tie(alpha, beta) =
          tune_alpha_beta(data, dims, cfg.error_bound, cfg.radius, per_level);
    }

    InterpPlan plan;
    plan.levels.resize(static_cast<std::size_t>(levels));
    for (int l = 1; l <= levels; ++l) {
      LevelPlan lp = per_level[static_cast<std::size_t>(l - 1)];
      lp.eb_scale = level_eb_scale(l, alpha, beta);
      plan.levels[static_cast<std::size_t>(l - 1)] = lp;
    }

    interp_encode_stages(out, data, dims, plan, cfg.error_bound, cfg.radius,
                         cfg.qp, cfg.pool, artifacts, cfg.tile_size);
  }

  template <class T>
  static void decode(const ContainerReader& in, T* out, ThreadPool* pool) {
    interp_decode_stages(in, out, pool);
  }

  template <class T>
  static Field<T> decode_preview(const ContainerReader& in, int level,
                                 ThreadPool* pool, PartialDecodeStats* stats) {
    return interp_preview_stages<T>(in, level, pool, stats);
  }

  template <class T>
  static Field<T> decode_region(const ContainerReader& in, const Box& box,
                                ThreadPool* pool, PartialDecodeStats* stats) {
    return interp_region_stages<T>(in, box, pool, stats);
  }
};

}  // namespace

template <class T>
std::vector<std::uint8_t> qoz_compress(const T* data, const Dims& dims,
                                       const QoZConfig& cfg,
                                       IndexArtifacts* artifacts) {
  return codec_seal<QoZCodec>(data, dims, cfg, artifacts);
}

template <class T>
Field<T> qoz_decompress(std::span<const std::uint8_t> archive,
                        ThreadPool* pool) {
  return codec_open<QoZCodec, T>(archive, pool);
}

template <class T>
void qoz_decompress_into(std::span<const std::uint8_t> archive, T* out,
                         const Dims& expect, ThreadPool* pool) {
  codec_open_into<QoZCodec, T>(archive, out, expect, pool);
}

template <class T>
Field<T> qoz_decompress_preview(std::span<const std::uint8_t> archive,
                                int level, ThreadPool* pool,
                                PartialDecodeStats* stats) {
  return codec_open_preview<QoZCodec, T>(archive, level, pool, stats);
}

template <class T>
Field<T> qoz_decompress_region(std::span<const std::uint8_t> archive,
                               const Box& box, ThreadPool* pool,
                               PartialDecodeStats* stats) {
  return codec_open_region<QoZCodec, T>(archive, box, pool, stats);
}

template std::vector<std::uint8_t> qoz_compress<float>(
    const float*, const Dims&, const QoZConfig&, IndexArtifacts*);
template std::vector<std::uint8_t> qoz_compress<double>(
    const double*, const Dims&, const QoZConfig&, IndexArtifacts*);
template Field<float> qoz_decompress<float>(std::span<const std::uint8_t>,
                                            ThreadPool*);
template Field<double> qoz_decompress<double>(std::span<const std::uint8_t>,
                                              ThreadPool*);
template void qoz_decompress_into<float>(std::span<const std::uint8_t>, float*,
                                         const Dims&, ThreadPool*);
template void qoz_decompress_into<double>(std::span<const std::uint8_t>,
                                          double*, const Dims&, ThreadPool*);
template Field<float> qoz_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
template Field<double> qoz_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
template Field<float> qoz_decompress_region<float>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);
template Field<double> qoz_decompress_region<double>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);

}  // namespace qip
