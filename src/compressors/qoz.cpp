#include "compressors/qoz.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compressors/archive.hpp"
#include "compressors/interp_engine.hpp"
#include "compressors/tuning.hpp"
#include "encode/huffman.hpp"
#include "predict/multilevel.hpp"

namespace qip {
namespace {

/// Candidate (kind, order) pairs for the per-level interpolation tuner:
/// cubic/linear crossed with slowest-first and fastest-first orders.
std::vector<LevelPlan> interp_candidates(int rank) {
  std::array<std::int8_t, kMaxRank> fwd{0, 1, 2, 3};
  std::array<std::int8_t, kMaxRank> rev{0, 1, 2, 3};
  for (int a = 0; a < rank; ++a) rev[a] = static_cast<std::int8_t>(rank - 1 - a);
  std::vector<LevelPlan> cands;
  for (InterpKind k : {InterpKind::kCubic, InterpKind::kLinear}) {
    for (const auto& o : {fwd, rev}) {
      LevelPlan lp;
      lp.kind = k;
      lp.order = o;
      cands.push_back(lp);
    }
  }
  return cands;
}

}  // namespace

template <class T>
std::vector<std::uint8_t> qoz_compress(const T* data, const Dims& dims,
                                       const QoZConfig& cfg,
                                       IndexArtifacts* artifacts) {
  const int levels = interpolation_level_count(dims);

  // Per-level interpolation tuning (coarse levels are nearly free to
  // sample; fine levels are subsampled harder).
  std::vector<LevelPlan> per_level(static_cast<std::size_t>(levels));
  if (cfg.tune_interp) {
    const auto cands = interp_candidates(dims.rank());
    for (int l = 1; l <= levels; ++l) {
      const std::size_t step = l == 1 ? 5 : (l == 2 ? 3 : 1);
      double best_cost = std::numeric_limits<double>::infinity();
      LevelPlan best = cands.front();
      for (const auto& cand : cands) {
        const double cost = InterpEngine<T>::level_cost_sample(
            data, dims, l, cand, cfg.error_bound, step);
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
      per_level[static_cast<std::size_t>(l - 1)] = best;
    }
  }

  double alpha = cfg.alpha, beta = cfg.beta;
  if (cfg.tune_level_eb) {
    std::tie(alpha, beta) =
        tune_alpha_beta(data, dims, cfg.error_bound, cfg.radius, per_level);
  }

  InterpPlan plan;
  plan.levels.resize(static_cast<std::size_t>(levels));
  for (int l = 1; l <= levels; ++l) {
    LevelPlan lp = per_level[static_cast<std::size_t>(l - 1)];
    lp.eb_scale = level_eb_scale(l, alpha, beta);
    plan.levels[static_cast<std::size_t>(l - 1)] = lp;
  }

  Field<T> work(dims, std::vector<T>(data, data + dims.size()));
  LinearQuantizer<T> quant(cfg.error_bound, cfg.radius);
  auto res = InterpEngine<T>::encode(work.data(), dims, plan, cfg.error_bound,
                                     quant, cfg.qp, artifacts != nullptr);
  if (artifacts) {
    artifacts->codes = std::move(res.codes);
    artifacts->symbols_spatial = std::move(res.symbols_spatial);
  }

  ByteWriter inner;
  write_dims(inner, dims);
  inner.put(cfg.error_bound);
  inner.put(cfg.radius);
  cfg.qp.save(inner);
  plan.save(inner);
  quant.save(inner);
  inner.put_block(huffman_encode(res.symbols));
  return seal_archive(CompressorId::kQoZ, dtype_tag<T>(), inner.bytes());
}

template <class T>
Field<T> qoz_decompress(std::span<const std::uint8_t> archive) {
  const auto inner = open_archive(archive, CompressorId::kQoZ, dtype_tag<T>());
  ByteReader r(inner);
  const Dims dims = read_dims(r);
  const double eb = r.get<double>();
  [[maybe_unused]] const std::int32_t radius = r.get<std::int32_t>();
  const QPConfig qp = QPConfig::load(r);
  const InterpPlan plan = InterpPlan::load(r);
  LinearQuantizer<T> quant(eb);
  quant.load(r);
  const std::vector<std::uint32_t> symbols = huffman_decode(r.get_block());

  Field<T> out(dims);
  InterpEngine<T>::decode(symbols, dims, plan, eb, quant, qp, out.data());
  return out;
}

template std::vector<std::uint8_t> qoz_compress<float>(
    const float*, const Dims&, const QoZConfig&, IndexArtifacts*);
template std::vector<std::uint8_t> qoz_compress<double>(
    const double*, const Dims&, const QoZConfig&, IndexArtifacts*);
template Field<float> qoz_decompress<float>(std::span<const std::uint8_t>);
template Field<double> qoz_decompress<double>(std::span<const std::uint8_t>);

}  // namespace qip
