#include "compressors/mgard.hpp"

#include <algorithm>
#include <cmath>

#include "compressors/core/driver.hpp"
#include "predict/interpolation.hpp"
#include "predict/multilevel.hpp"
#include "util/status.hpp"

namespace qip {
namespace {

/// Piecewise-linear prediction along `axis` at spacing `s` from the
/// hierarchy source `src` (original data during encode, reconstruction
/// during decode).
template <class T>
T linear_pred(const T* src, const Dims& dims,
              const std::array<std::size_t, kMaxRank>& c, std::size_t idx,
              int axis, std::size_t s) {
  const std::ptrdiff_t st = static_cast<std::ptrdiff_t>(s * dims.stride(axis));
  const T left = src[idx - st];
  if (c[axis] + s < dims.extent(axis))
    return interp_linear(left, src[idx + st]);
  return left;
}

/// The level/stage/point traversal shared by encode and decode. During
/// encode `src == orig` (global transform); during decode `src == recon`.
template <class T, bool kEncode>
void mgard_walk(const T* src, T* recon, const Dims& dims,
                const std::vector<double>& level_eb, double base_eb,
                LinearQuantizer<T>& quant, const QPConfig& qp,
                std::vector<std::uint32_t>& symbols, std::size_t& cursor,
                std::vector<std::uint32_t>& codes,
                std::vector<std::uint32_t>* sym_spatial = nullptr,
                int min_level = 1,
                std::vector<SymbolSpan>* spans = nullptr) {
  const std::int32_t radius = quant.radius();
  const int levels = static_cast<int>(level_eb.size());
  const auto order = default_order(dims.rank());

  if constexpr (!kEncode) {
    // The walk consumes one symbol per visited point — the level-
    // `min_level` grid population, dims.size() for a full decode.
    // Checking once up front keeps hostile (or truncated) archives from
    // driving the cursor out of bounds (mirrors lorenzo_walk).
    if (cursor > symbols.size() ||
        symbols.size() - cursor <
            InterpEngine<T>::grid_point_count(dims, min_level))
      throw DecodeError("mgard: symbol stream shorter than field");
  }
  std::size_t span_begin = symbols.size();
  std::size_t span_out = quant.outlier_count();

  quant.set_error_bound(base_eb);
  if constexpr (kEncode) {
    T r;
    const std::uint32_t code = quant.quantize(src[0], T{0}, &r);
    codes[0] = code;
    const std::uint32_t sym = qp_encode_symbol(code, 0, radius);
    if (sym_spatial) (*sym_spatial)[0] = sym;
    symbols.push_back(sym);
  } else {
    const std::uint32_t code =
        qp_decode_symbol(symbols[cursor++], 0, radius);
    codes[0] = code;
    recon[0] = quant.recover(code, T{0});
  }

  for (int level = levels; level >= min_level; --level) {
    const std::size_t s = std::size_t{1} << (level - 1);
    quant.set_error_bound(level_eb[static_cast<std::size_t>(level - 1)]);
    for (int k = 0; k < dims.rank(); ++k) {
      const StageGrid g = make_stage_grid(
          dims, s, std::span<const int>(order.data(), dims.rank()), k, level);
      const QPAxes ax = assign_qp_axes(g, dims, g.dim);

      for_each_stage_point(dims, g, [&](const std::array<std::size_t,
                                                         kMaxRank>& c,
                                        std::size_t idx) {
        const T pred = linear_pred(src, dims, c, idx, g.dim, s);

        QPNeighborhood nb;
        nb.back = ax.back_off;
        nb.left = ax.left_off;
        nb.top = ax.top_off;
        auto avail = [&](int axis) {
          return axis >= 0 && c[axis] >= g.start[axis] + g.step[axis];
        };
        nb.avail_back = avail(ax.back);
        nb.avail_left = avail(ax.left);
        nb.avail_top = avail(ax.top);
        const std::int64_t comp =
            qp_compensation(codes.data(), idx, nb, qp, level, radius);

        if constexpr (kEncode) {
          T r;
          const std::uint32_t code = quant.quantize(src[idx], pred, &r);
          codes[idx] = code;
          const std::uint32_t sym = qp_encode_symbol(code, comp, radius);
          if (sym_spatial) (*sym_spatial)[idx] = sym;
          symbols.push_back(sym);
        } else {
          const std::uint32_t code =
              qp_decode_symbol(symbols[cursor++], comp, radius);
          codes[idx] = code;
          recon[idx] = quant.recover(code, pred);
        }
      });
    }
    if constexpr (kEncode) {
      // One span per hierarchy level (the anchor symbol rides in the
      // coarsest span), mirroring the interpolation engine's layout so
      // the shared chunk writer applies unchanged.
      if (spans) {
        spans->push_back({level, kWholeDomainTile, span_begin,
                          symbols.size() - span_begin, span_out,
                          quant.outlier_count() - span_out});
        span_begin = symbols.size();
        span_out = quant.outlier_count();
      }
    }
  }
  quant.set_error_bound(base_eb);
}

/// The kConfig stage, parsed (shared by the full, resolution-reduced and
/// preview decodes).
template <class T>
struct MGARDStream {
  InterpCommon c;
  std::vector<double> level_eb;
  LinearQuantizer<T> quant{0.0};
  std::vector<std::uint32_t> symbols;
};

template <class T>
MGARDStream<T> mgard_read_header(const ContainerReader& in) {
  MGARDStream<T> s;
  ByteReader h = in.stage(StageId::kConfig);
  s.c = load_interp_common(h);
  const std::uint64_t levels = h.get_varint();
  // Each level costs one 8-byte eb below, so the stream itself bounds a
  // truthful count; anything larger is an allocation bomb.
  if (levels > h.remaining() / sizeof(double))
    throw DecodeError("mgard: level count exceeds stream");
  s.level_eb.resize(static_cast<std::size_t>(levels));
  for (auto& e : s.level_eb) e = h.get<double>();
  s.quant = LinearQuantizer<T>(s.c.error_bound);
  s.quant.load(h);
  return s;
}

template <class T>
MGARDStream<T> mgard_read_stream(const ContainerReader& in, ThreadPool* pool) {
  MGARDStream<T> s = mgard_read_header<T>(in);
  s.symbols = read_symbols_stage(in, pool);
  return s;
}

/// Stage policy: global hierarchical transform with an exact-bound
/// correction pass (stored in its own kCorrections stage).
struct MGARDCodec {
  using Config = MGARDConfig;
  using Artifacts = IndexArtifacts;
  static constexpr CompressorId kId = CompressorId::kMGARD;
  static constexpr const char* kName = "mgard";

  template <class T>
  static void encode(const T* data, const Dims& dims, const Config& cfg,
                     ContainerWriter& out, Artifacts* artifacts) {
    const int levels = interpolation_level_count(dims);
    std::vector<double> level_eb(static_cast<std::size_t>(levels));
    for (int l = 1; l <= levels; ++l) {
      const double frac = std::max(
          cfg.fine_fraction * std::pow(cfg.decay, l - 1), cfg.floor_fraction);
      level_eb[static_cast<std::size_t>(l - 1)] = cfg.error_bound * frac;
    }

    LinearQuantizer<T> quant(cfg.error_bound, cfg.radius);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(dims.size());
    std::vector<std::uint32_t> codes(dims.size(), 0);
    std::size_t cursor = 0;
    std::vector<std::uint32_t> sym_spatial;
    if (artifacts) sym_spatial.assign(dims.size(), 0);
    std::vector<SymbolSpan> spans;
    mgard_walk<T, true>(data, nullptr, dims, level_eb, cfg.error_bound, quant,
                        cfg.qp, symbols, cursor, codes,
                        artifacts ? &sym_spatial : nullptr, 1, &spans);
    if (artifacts) {
      artifacts->codes = codes;
      artifacts->symbols_spatial = std::move(sym_spatial);
    }

    // Correction pass: replay the decoder, then patch every point whose
    // accumulated hierarchy error exceeds the bound. Bin eb/2 leaves the
    // patched error at eb/2 worst case.
    Field<T> recon(dims);
    {
      std::vector<std::uint32_t> scratch_codes(dims.size(), 0);
      std::size_t cur = 0;
      quant.reset_cursor();
      mgard_walk<T, false>(recon.data(), recon.data(), dims, level_eb,
                           cfg.error_bound, quant, cfg.qp, symbols, cur,
                           scratch_codes);
    }
    const auto corrections = collect_corrections(
        data, dims.size(), cfg.error_bound, cfg.error_bound / 2.0,
        [&](std::size_t i) { return static_cast<double>(recon[i]); });

    ByteWriter& h = out.stage(StageId::kConfig);
    save_interp_common(h, cfg.error_bound, cfg.radius, cfg.qp);
    h.put_varint(static_cast<std::uint64_t>(levels));
    for (double e : level_eb) h.put(e);
    quant.save(h);
    write_symbol_chunks(out, symbols, spans, cfg.pool);
    write_corrections_stage(out, corrections);
  }

  template <class T>
  static void decode(const ContainerReader& in, T* out, ThreadPool* pool) {
    MGARDStream<T> s = mgard_read_stream<T>(in, pool);
    const Dims& dims = in.dims();
    std::vector<std::uint32_t> codes(dims.size(), 0);
    std::size_t cursor = 0;
    mgard_walk<T, false>(out, out, dims, s.level_eb, s.c.error_bound, s.quant,
                         s.c.qp, s.symbols, cursor, codes);
    apply_corrections_stage(in, out, dims.size(), s.c.error_bound / 2.0,
                            "mgard");
  }

  /// Level-`level` preview from the coarse chunk prefix. The exact-bound
  /// correction pass indexes the finest grid, so for level > 1 it is
  /// skipped and a preview is bounded by the hierarchy's per-level error
  /// budget rather than the patched worst case — the standard
  /// progressive trade. At level 1 the preview grid *is* the finest
  /// grid, so corrections apply and the result equals a full decode.
  template <class T>
  static Field<T> decode_preview(const ContainerReader& in, int level,
                                 ThreadPool* pool, PartialDecodeStats* stats) {
    MGARDStream<T> s = mgard_read_header<T>(in);
    const int levels = static_cast<int>(s.level_eb.size());
    if (level < 1 || level > levels)
      throw DecodeError("preview level outside the archive's level range");
    const Dims& dims = in.dims();

    if (in.version() == 2) {
      s.symbols = read_symbols_stage(in, pool);
    } else {
      const std::vector<ChunkEntry>& chunks = in.directory().chunks;
      for (std::size_t i = 0;
           i < chunks.size() && chunks[i].level >= level; ++i) {
        if (chunks[i].symbol_count == 0)
          throw DecodeError("raw payload chunk in a symbol-stream archive");
        const std::vector<std::uint32_t> syms =
            huffman_decode(in.chunk_bytes(i), pool);
        if (syms.size() != chunks[i].symbol_count)
          throw DecodeError("payload chunk symbol count mismatch");
        s.symbols.insert(s.symbols.end(), syms.begin(), syms.end());
      }
    }

    Field<T> full(dims);
    std::vector<std::uint32_t> codes(dims.size(), 0);
    std::size_t cursor = 0;
    mgard_walk<T, false>(full.data(), full.data(), dims, s.level_eb,
                         s.c.error_bound, s.quant, s.c.qp, s.symbols, cursor,
                         codes, nullptr, level);
    if (level == 1)
      apply_corrections_stage(in, full.data(), dims.size(),
                              s.c.error_bound / 2.0, "mgard");
    if (stats) {
      stats->payload_bytes_read =
          in.version() == 2 ? in.stage_bytes(StageId::kSymbols).size()
                            : in.payload_bytes_read();
      stats->payload_bytes_total =
          in.version() == 2 ? in.stage_bytes(StageId::kSymbols).size()
                            : in.payload_bytes_declared();
    }
    return decimate_to_level(full.data(), dims, level);
  }
};

}  // namespace

template <class T>
std::vector<std::uint8_t> mgard_compress(const T* data, const Dims& dims,
                                         const MGARDConfig& cfg,
                                         IndexArtifacts* artifacts) {
  return codec_seal<MGARDCodec>(data, dims, cfg, artifacts);
}

template <class T>
Field<T> mgard_decompress(std::span<const std::uint8_t> archive,
                          ThreadPool* pool) {
  return codec_open<MGARDCodec, T>(archive, pool);
}

template <class T>
void mgard_decompress_into(std::span<const std::uint8_t> archive, T* out,
                           const Dims& expect, ThreadPool* pool) {
  codec_open_into<MGARDCodec, T>(archive, out, expect, pool);
}

template <class T>
Field<T> mgard_decompress_reduced(std::span<const std::uint8_t> archive,
                                  int skip_levels) {
  const ContainerReader in(archive, CompressorId::kMGARD, dtype_tag<T>());
  MGARDStream<T> s = mgard_read_stream<T>(in, nullptr);
  const Dims& dims = in.dims();
  const int levels = static_cast<int>(s.level_eb.size());

  const int skip = std::clamp(skip_levels, 0, levels - 1);
  Field<T> full(dims);
  std::vector<std::uint32_t> codes(dims.size(), 0);
  std::size_t cursor = 0;
  mgard_walk<T, false>(full.data(), full.data(), dims, s.level_eb,
                       s.c.error_bound, s.quant, s.c.qp, s.symbols, cursor,
                       codes, nullptr, 1 + skip);

  // Decimate the coarse grid (stride 2^skip per axis).
  const std::size_t stride = std::size_t{1} << skip;
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  for (int a = 0; a < dims.rank(); ++a)
    e[a] = (dims.extent(a) + stride - 1) / stride;
  Dims out_dims = [&] {
    switch (dims.rank()) {
      case 1: return Dims{e[0]};
      case 2: return Dims{e[0], e[1]};
      case 3: return Dims{e[0], e[1], e[2]};
      default: return Dims{e[0], e[1], e[2], e[3]};
    }
  }();
  Field<T> out(out_dims);
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < out_dims.extent(0); ++c[0])
    for (c[1] = 0; c[1] < out_dims.extent(1); ++c[1])
      for (c[2] = 0; c[2] < out_dims.extent(2); ++c[2])
        for (c[3] = 0; c[3] < out_dims.extent(3); ++c[3])
          out[out_dims.index(c[0], c[1], c[2], c[3])] =
              full[dims.index(c[0] * stride,
                              dims.rank() > 1 ? c[1] * stride : 0,
                              dims.rank() > 2 ? c[2] * stride : 0,
                              dims.rank() > 3 ? c[3] * stride : 0)];
  return out;
}

template <class T>
Field<T> mgard_decompress_preview(std::span<const std::uint8_t> archive,
                                  int level, ThreadPool* pool,
                                  PartialDecodeStats* stats) {
  return codec_open_preview<MGARDCodec, T>(archive, level, pool, stats);
}

template Field<float> mgard_decompress_reduced<float>(
    std::span<const std::uint8_t>, int);
template Field<double> mgard_decompress_reduced<double>(
    std::span<const std::uint8_t>, int);
template Field<float> mgard_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
template Field<double> mgard_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);

template std::vector<std::uint8_t> mgard_compress<float>(
    const float*, const Dims&, const MGARDConfig&, IndexArtifacts*);
template std::vector<std::uint8_t> mgard_compress<double>(
    const double*, const Dims&, const MGARDConfig&, IndexArtifacts*);
template Field<float> mgard_decompress<float>(std::span<const std::uint8_t>,
                                              ThreadPool*);
template Field<double> mgard_decompress<double>(std::span<const std::uint8_t>,
                                                ThreadPool*);
template void mgard_decompress_into<float>(std::span<const std::uint8_t>,
                                           float*, const Dims&, ThreadPool*);
template void mgard_decompress_into<double>(std::span<const std::uint8_t>,
                                            double*, const Dims&, ThreadPool*);

}  // namespace qip
