#include "compressors/sperr_like.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "compressors/core/driver.hpp"
#include "encode/rle.hpp"

namespace qip {
namespace {

// CDF 9/7 lifting constants (JPEG2000 irreversible filter).
constexpr double kA = -1.586134342059924;
constexpr double kB = -0.052980118572961;
constexpr double kG = 0.882911075530934;
constexpr double kD = 0.443506852043971;
constexpr double kK = 1.230174104914001;

/// Mirror index into [0, n).
inline std::size_t mirror(std::ptrdiff_t i, std::size_t n) {
  if (n == 1) return 0;
  while (i < 0 || i >= static_cast<std::ptrdiff_t>(n)) {
    if (i < 0) i = -i;
    if (i >= static_cast<std::ptrdiff_t>(n))
      i = 2 * static_cast<std::ptrdiff_t>(n) - 2 - i;
  }
  return static_cast<std::size_t>(i);
}

/// One forward CDF 9/7 pass on a line of length n (in place, then
/// deinterleaved: approximations first).
void line_fwd(double* x, std::size_t n, std::vector<double>& tmp) {
  if (n < 2) return;
  auto at = [&](std::ptrdiff_t i) -> double& { return x[mirror(i, n)]; };
  const std::ptrdiff_t sn = static_cast<std::ptrdiff_t>(n);
  for (std::ptrdiff_t i = 1; i < sn; i += 2) x[i] += kA * (at(i - 1) + at(i + 1));
  for (std::ptrdiff_t i = 0; i < sn; i += 2) x[i] += kB * (at(i - 1) + at(i + 1));
  for (std::ptrdiff_t i = 1; i < sn; i += 2) x[i] += kG * (at(i - 1) + at(i + 1));
  for (std::ptrdiff_t i = 0; i < sn; i += 2) x[i] += kD * (at(i - 1) + at(i + 1));
  const std::size_t nl = (n + 1) / 2;
  tmp.resize(n);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i];
  for (std::size_t i = 0; i < nl; ++i) x[i] = tmp[2 * i] / kK;
  for (std::size_t i = nl; i < n; ++i) x[i] = tmp[2 * (i - nl) + 1] * (kK / 2);
}

void line_inv(double* x, std::size_t n, std::vector<double>& tmp) {
  if (n < 2) return;
  const std::size_t nl = (n + 1) / 2;
  tmp.resize(n);
  for (std::size_t i = 0; i < nl; ++i) tmp[2 * i] = x[i] * kK;
  for (std::size_t i = nl; i < n; ++i) tmp[2 * (i - nl) + 1] = x[i] / (kK / 2);
  for (std::size_t i = 0; i < n; ++i) x[i] = tmp[i];
  auto at = [&](std::ptrdiff_t i) -> double& { return x[mirror(i, n)]; };
  const std::ptrdiff_t sn = static_cast<std::ptrdiff_t>(n);
  for (std::ptrdiff_t i = 0; i < sn; i += 2) x[i] -= kD * (at(i - 1) + at(i + 1));
  for (std::ptrdiff_t i = 1; i < sn; i += 2) x[i] -= kG * (at(i - 1) + at(i + 1));
  for (std::ptrdiff_t i = 0; i < sn; i += 2) x[i] -= kB * (at(i - 1) + at(i + 1));
  for (std::ptrdiff_t i = 1; i < sn; i += 2) x[i] -= kA * (at(i - 1) + at(i + 1));
}

/// Extents of the low-pass box after `level` halvings.
std::array<std::size_t, kMaxRank> level_extents(const Dims& dims, int level) {
  std::array<std::size_t, kMaxRank> e{1, 1, 1, 1};
  for (int a = 0; a < dims.rank(); ++a) {
    std::size_t n = dims.extent(a);
    for (int l = 0; l < level; ++l) n = (n + 1) / 2;
    e[a] = n;
  }
  return e;
}

/// Apply the transform along every axis of the level's low-pass box.
template <bool kFwd>
void dwt_level(std::vector<double>& buf, const Dims& dims, int level) {
  const auto ext = level_extents(dims, level);
  std::vector<double> line, tmp;
  // For the inverse, axes must be undone in reverse order.
  for (int step = 0; step < dims.rank(); ++step) {
    const int axis = kFwd ? step : dims.rank() - 1 - step;
    const std::size_t n = ext[axis];
    if (n < 2) continue;
    line.resize(n);
    // Iterate all lines along `axis` within the box.
    std::array<std::size_t, kMaxRank> c{};
    std::array<std::size_t, kMaxRank> lim = ext;
    lim[axis] = 1;
    for (c[0] = 0; c[0] < lim[0]; ++c[0])
      for (c[1] = 0; c[1] < lim[1]; ++c[1])
        for (c[2] = 0; c[2] < lim[2]; ++c[2])
          for (c[3] = 0; c[3] < lim[3]; ++c[3]) {
            const std::size_t base = dims.index(c[0], c[1], c[2], c[3]);
            const std::size_t stride = dims.stride(axis);
            for (std::size_t i = 0; i < n; ++i)
              line[i] = buf[base + i * stride];
            if constexpr (kFwd)
              line_fwd(line.data(), n, tmp);
            else
              line_inv(line.data(), n, tmp);
            for (std::size_t i = 0; i < n; ++i)
              buf[base + i * stride] = line[i];
          }
  }
}

/// --- Future-work extension: QP generalized to the wavelet archetype ---
///
/// Applies the adaptively-gated 2-D Lorenzo prediction (paper Algorithm
/// 2's Case III gate) to the quantization indices of each wavelet
/// subband. Subbands are boxes in the deinterleaved layout; within one,
/// indices of smooth regions cluster just like the interpolation stage
/// grids do. The forward pass runs in reverse lexicographic order so
/// every prediction reads original neighbor indices; the decoder runs
/// forward, reading already-recovered ones -- the identical information
/// symmetry as the interpolation-compressor QP.
template <bool kForward>
void subband_index_predict(std::vector<std::uint32_t>& sym, const Dims& dims,
                           int levels) {
  auto signed_q = [](std::uint32_t s) {
    return static_cast<std::int64_t>((static_cast<std::uint64_t>(s) >> 1) ^
                                     (~(static_cast<std::uint64_t>(s) & 1) + 1));
  };
  auto zig = [](std::int64_t q) {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(q) << 1) ^
                                      static_cast<std::uint64_t>(q >> 63));
  };

  // Enumerate subband boxes: per level, every low/high combination except
  // all-low; plus the final DC box.
  struct Box {
    std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0}, hi{1, 1, 1, 1};
  };
  std::vector<Box> boxes;
  for (int l = 0; l < levels; ++l) {
    const auto cur = level_extents(dims, l);
    const auto nxt = level_extents(dims, l + 1);
    const std::uint32_t nmask = 1u << dims.rank();
    for (std::uint32_t mask = 1; mask < nmask; ++mask) {
      Box b;
      bool empty = false;
      for (int a = 0; a < dims.rank(); ++a) {
        if ((mask >> a) & 1) {
          b.lo[a] = nxt[a];
          b.hi[a] = cur[a];
        } else {
          b.lo[a] = 0;
          b.hi[a] = nxt[a];
        }
        if (b.lo[a] >= b.hi[a]) empty = true;
      }
      if (!empty) boxes.push_back(b);
    }
  }
  {
    Box dc;
    const auto top = level_extents(dims, levels);
    for (int a = 0; a < dims.rank(); ++a) dc.hi[a] = top[a];
    boxes.push_back(dc);
  }

  for (const auto& b : boxes) {
    // The two fastest axes with more than one sample in this box.
    int a1 = -1, a0 = -1;
    for (int a = dims.rank() - 1; a >= 0; --a) {
      if (b.hi[a] - b.lo[a] < 2) continue;
      if (a1 < 0)
        a1 = a;
      else if (a0 < 0)
        a0 = a;
    }
    if (a1 < 0 || a0 < 0) continue;
    const std::size_t off1 = dims.stride(a1), off0 = dims.stride(a0);

    auto compensation = [&](const std::array<std::size_t, kMaxRank>& c,
                            std::size_t idx) -> std::int64_t {
      if (c[a1] < b.lo[a1] + 1 || c[a0] < b.lo[a0] + 1) return 0;
      const std::int64_t ql = signed_q(sym[idx - off1]);
      const std::int64_t qt = signed_q(sym[idx - off0]);
      if (!((ql > 0 && qt > 0) || (ql < 0 && qt < 0))) return 0;  // Case III
      const std::int64_t qd = signed_q(sym[idx - off1 - off0]);
      return ql + qt - qd;
    };

    auto visit = [&](const std::array<std::size_t, kMaxRank>& c) {
      const std::size_t idx = dims.index(c[0], c[1], c[2], c[3]);
      const std::int64_t comp = compensation(c, idx);
      if (comp == 0) return;
      if constexpr (kForward)
        sym[idx] = zig(signed_q(sym[idx]) - comp);
      else
        sym[idx] = zig(signed_q(sym[idx]) + comp);
    };

    std::array<std::size_t, kMaxRank> c{};
    if constexpr (kForward) {
      // Reverse lex order: predictions read original neighbors.
      for (c[0] = b.hi[0]; c[0]-- > b.lo[0];)
        for (c[1] = b.hi[1]; c[1]-- > b.lo[1];)
          for (c[2] = b.hi[2]; c[2]-- > b.lo[2];)
            for (c[3] = b.hi[3]; c[3]-- > b.lo[3];) visit(c);
    } else {
      for (c[0] = b.lo[0]; c[0] < b.hi[0]; ++c[0])
        for (c[1] = b.lo[1]; c[1] < b.hi[1]; ++c[1])
          for (c[2] = b.lo[2]; c[2] < b.hi[2]; ++c[2])
            for (c[3] = b.lo[3]; c[3] < b.hi[3]; ++c[3]) visit(c);
    }
  }
}

int effective_levels(const Dims& dims, int requested) {
  int lv = 0;
  std::size_t m = dims.max_extent();
  while (lv < requested && m >= 8) {
    m = (m + 1) / 2;
    ++lv;
  }
  return std::max(lv, 1);
}

/// Stage policy: CDF 9/7 wavelet coefficients as an RLE symbol stream
/// plus the exact-bound correction list.
struct SPERRCodec {
  using Config = SPERRConfig;
  using Artifacts = NoArtifacts;
  static constexpr CompressorId kId = CompressorId::kSPERR;
  static constexpr const char* kName = "sperr";

  template <class T>
  static void encode(const T* data, const Dims& dims, const Config& cfg,
                     ContainerWriter& out, Artifacts*) {
    const int levels = effective_levels(dims, cfg.levels);
    std::vector<double> buf(dims.size());
    for (std::size_t i = 0; i < buf.size(); ++i)
      buf[i] = static_cast<double>(data[i]);
    for (int l = 0; l < levels; ++l) dwt_level<true>(buf, dims, l);

    // Uniform scalar quantization of the coefficients.
    const double delta = cfg.error_bound / cfg.quant_factor;
    std::vector<std::uint32_t> symbols(buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      const std::int64_t q = std::llround(buf[i] / (2.0 * delta));
      symbols[i] = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(q) << 1) ^
          static_cast<std::uint64_t>(q >> 63));
      buf[i] = 2.0 * delta * static_cast<double>(q);  // decoder's view
    }

    // Reconstruct from the decoder's coefficients to find violations.
    for (int l = levels - 1; l >= 0; --l) dwt_level<false>(buf, dims, l);
    const auto corrections = collect_corrections(
        data, dims.size(), cfg.error_bound, cfg.error_bound / 2.0,
        // Compare against the value the decoder will actually produce,
        // including the final cast to T.
        [&](std::size_t i) {
          return static_cast<double>(static_cast<T>(buf[i]));
        });

    if (cfg.index_prediction)
      subband_index_predict<true>(symbols, dims, levels);

    ByteWriter& h = out.stage(StageId::kConfig);
    h.put(cfg.error_bound);
    h.put(static_cast<std::int32_t>(levels));
    h.put(cfg.quant_factor);
    h.put<std::uint8_t>(cfg.index_prediction ? 1 : 0);
    write_raw_chunk(out, rle_encode_symbols(symbols));
    write_corrections_stage(out, corrections);
  }

  template <class T>
  static void decode(const ContainerReader& in, T* out, ThreadPool*) {
    ByteReader h = in.stage(StageId::kConfig);
    const double eb = h.get<double>();
    const int levels = h.get<std::int32_t>();
    const double quant_factor = h.get<double>();
    const bool index_prediction = h.get<std::uint8_t>() != 0;
    const Dims& dims = in.dims();
    auto symbols = rle_decode_symbols(read_raw_chunk(in), dims.size());
    if (symbols.size() < dims.size())
      throw DecodeError("sperr: symbol stream shorter than field");
    if (index_prediction) subband_index_predict<false>(symbols, dims, levels);

    const double delta = eb / quant_factor;
    std::vector<double> buf(dims.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      const std::uint64_t zz = symbols[i];
      const std::int64_t q =
          static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
      buf[i] = 2.0 * delta * static_cast<double>(q);
    }
    for (int l = levels - 1; l >= 0; --l) dwt_level<false>(buf, dims, l);

    for (std::size_t i = 0; i < buf.size(); ++i)
      out[i] = static_cast<T>(buf[i]);
    apply_corrections_stage(in, out, dims.size(), eb / 2.0, "sperr");
  }
};

}  // namespace

template <class T>
std::vector<std::uint8_t> sperr_compress(const T* data, const Dims& dims,
                                         const SPERRConfig& cfg) {
  return codec_seal<SPERRCodec>(data, dims, cfg);
}

template <class T>
Field<T> sperr_decompress(std::span<const std::uint8_t> archive,
                          ThreadPool* pool) {
  return codec_open<SPERRCodec, T>(archive, pool);
}

template <class T>
void sperr_decompress_into(std::span<const std::uint8_t> archive, T* out,
                           const Dims& expect, ThreadPool* pool) {
  codec_open_into<SPERRCodec, T>(archive, out, expect, pool);
}

template std::vector<std::uint8_t> sperr_compress<float>(const float*,
                                                         const Dims&,
                                                         const SPERRConfig&);
template std::vector<std::uint8_t> sperr_compress<double>(const double*,
                                                          const Dims&,
                                                          const SPERRConfig&);
template Field<float> sperr_decompress<float>(std::span<const std::uint8_t>,
                                              ThreadPool*);
template Field<double> sperr_decompress<double>(std::span<const std::uint8_t>,
                                                ThreadPool*);
template void sperr_decompress_into<float>(std::span<const std::uint8_t>,
                                           float*, const Dims&, ThreadPool*);
template void sperr_decompress_into<double>(std::span<const std::uint8_t>,
                                            double*, const Dims&, ThreadPool*);

}  // namespace qip
