#pragma once

// Common archive framing shared by all compressors in the library.
//
// Outer layout:  magic(4) | compressor id(1) | dtype(1) | LZB block
// where the LZB block losslessly wraps the compressor-specific inner
// payload (header + entropy-coded streams), mirroring the
// Huffman-then-ZSTD pipeline of the original implementations.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "lossless/lzb.hpp"
#include "util/bytes.hpp"
#include "util/dims.hpp"
#include "util/status.hpp"

namespace qip {

inline constexpr std::uint32_t kArchiveMagic = 0x5A504951;  // "QIPZ"

/// Compressor identifiers stored in archives.
enum class CompressorId : std::uint8_t {
  kSZ3 = 1,
  kQoZ = 2,
  kHPEZ = 3,
  kMGARD = 4,
  kZFP = 5,
  kSPERR = 6,
  kTTHRESH = 7,
};

/// Scalar type tag stored in archives.
template <class T>
constexpr std::uint8_t dtype_tag();
template <>
constexpr std::uint8_t dtype_tag<float>() { return 1; }
template <>
constexpr std::uint8_t dtype_tag<double>() { return 2; }

/// Bytes of outer framing before the LZB block: magic(4) + id(1) + dtype(1).
inline constexpr std::size_t kArchiveHeaderBytes = 6;

/// Wrap an inner payload into the outer framing (applies LZB). `pool`
/// parallelizes the lossless pass; the bytes do not depend on it.
[[nodiscard]] inline std::vector<std::uint8_t> seal_archive(
    CompressorId id, std::uint8_t dtype, std::span<const std::uint8_t> inner,
    ThreadPool* pool = nullptr) {
  ByteWriter w;
  w.put(kArchiveMagic);
  w.put(static_cast<std::uint8_t>(id));
  w.put(dtype);
  const auto packed = lzb_compress(inner, pool);
  w.put_bytes(packed);
  return w.take();
}

/// Validate the outer framing and return the decompressed inner payload.
/// The whole header (magic, id, dtype) is length-checked against the
/// buffer before any field is read; `max_inner` bounds how large an inner
/// payload a hostile length header may make us materialize.
[[nodiscard]] inline std::vector<std::uint8_t> open_archive(
    std::span<const std::uint8_t> bytes, CompressorId expect_id,
    std::uint8_t expect_dtype,
    std::uint64_t max_inner = std::numeric_limits<std::uint64_t>::max(),
    ThreadPool* pool = nullptr) {
  if (bytes.size() < kArchiveHeaderBytes)
    throw DecodeError("archive shorter than header");
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kArchiveMagic)
    throw DecodeError("bad archive magic");
  const auto id = static_cast<CompressorId>(r.get<std::uint8_t>());
  if (id != expect_id) throw DecodeError("archive compressor mismatch");
  const std::uint8_t dt = r.get<std::uint8_t>();
  if (dt != expect_dtype) throw DecodeError("archive dtype mismatch");
  return lzb_decompress(r.get_bytes(r.remaining()), max_inner, pool);
}

/// Peek at an archive's compressor id without decoding it.
[[nodiscard]] inline CompressorId archive_compressor(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kArchiveHeaderBytes)
    throw DecodeError("archive shorter than header");
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kArchiveMagic)
    throw DecodeError("bad archive magic");
  return static_cast<CompressorId>(r.get<std::uint8_t>());
}

inline void write_dims(ByteWriter& w, const Dims& dims) {
  w.put_varint(static_cast<std::uint64_t>(dims.rank()));
  for (int a = 0; a < dims.rank(); ++a) w.put_varint(dims.extent(a));
}

inline Dims read_dims(ByteReader& r) {
  const std::uint64_t raw_rank = r.get_varint();
  if (raw_rank < 1 || raw_rank > static_cast<std::uint64_t>(kMaxRank))
    throw DecodeError("bad rank in archive");
  const int rank = static_cast<int>(raw_rank);
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  std::size_t total = 1;
  for (int a = 0; a < rank; ++a) {
    e[a] = static_cast<std::size_t>(r.get_varint());
    if (e[a] == 0) throw DecodeError("zero extent in archive");
    // Element count must stay representable; a product that wraps size_t
    // would defeat every downstream buffer-size check.
    if (e[a] > std::numeric_limits<std::size_t>::max() / total)
      throw DecodeError("extent product overflow in archive");
    total *= e[a];
  }
  switch (rank) {
    case 1: return Dims{e[0]};
    case 2: return Dims{e[0], e[1]};
    case 3: return Dims{e[0], e[1], e[2]};
    default: return Dims{e[0], e[1], e[2], e[3]};
  }
}

}  // namespace qip
