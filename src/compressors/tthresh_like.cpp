#include "compressors/tthresh_like.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "compressors/core/driver.hpp"
#include "encode/rle.hpp"

namespace qip {
namespace {

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (row-major).
/// On return `a`'s diagonal holds eigenvalues and `v` the eigenvectors
/// as columns. O(sweeps * n^3); fine for the mode sizes we allow.
void jacobi_eigen(std::vector<double>& a, std::size_t n,
                  std::vector<double>& v) {
  v.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;
  for (int sweep = 0; sweep < 16; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    if (off < 1e-22 * n * n) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p], aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p], akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k], aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p], vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }
}

Dims with_extent(const Dims& d, int axis, std::size_t e) {
  std::size_t x[kMaxRank] = {d.extent(0), d.extent(1), d.extent(2),
                             d.extent(3)};
  x[axis] = e;
  switch (d.rank()) {
    case 1: return Dims{x[0]};
    case 2: return Dims{x[0], x[1]};
    case 3: return Dims{x[0], x[1], x[2]};
    default: return Dims{x[0], x[1], x[2], x[3]};
  }
}

/// Iterate all lines along `axis`: fn(base_offset, stride).
template <class F>
void for_each_line(const Dims& dims, int axis, F&& fn) {
  std::array<std::size_t, kMaxRank> lim{};
  for (int a = 0; a < kMaxRank; ++a) lim[a] = dims.extent(a);
  lim[axis] = 1;
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < lim[0]; ++c[0])
    for (c[1] = 0; c[1] < lim[1]; ++c[1])
      for (c[2] = 0; c[2] < lim[2]; ++c[2])
        for (c[3] = 0; c[3] < lim[3]; ++c[3])
          fn(dims.index(c[0], c[1], c[2], c[3]));
}

/// Gram matrix of the mode-`axis` unfolding: G = X_(n) X_(n)^T.
std::vector<double> mode_gram(const std::vector<double>& x, const Dims& dims,
                              int axis) {
  const std::size_t n = dims.extent(axis);
  const std::size_t stride = dims.stride(axis);
  std::vector<double> g(n * n, 0.0);
  std::vector<double> line(n);
  for_each_line(dims, axis, [&](std::size_t base) {
    for (std::size_t i = 0; i < n; ++i) line[i] = x[base + i * stride];
    for (std::size_t i = 0; i < n; ++i) {
      const double li = line[i];
      for (std::size_t j = i; j < n; ++j) g[i * n + j] += li * line[j];
    }
  });
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) g[i * n + j] = g[j * n + i];
  return g;
}

/// Tensor-times-matrix producing a new buffer: with `project` the mode
/// extent shrinks n -> r via y_j = sum_i m[i*r+j] x_i (U^T x); otherwise
/// it expands r -> n via y_i = sum_j m[i*r+j] c_j (U c). `m` is n x r
/// row-major in both cases. `dims` is updated to the output shape.
std::vector<double> ttm(const std::vector<double>& x, Dims& dims, int axis,
                        const std::vector<double>& m, std::size_t n,
                        std::size_t r, bool project) {
  const Dims in_dims = dims;
  const Dims out_dims = with_extent(in_dims, axis, project ? r : n);
  std::vector<double> y(out_dims.size(), 0.0);
  const std::size_t in_stride = in_dims.stride(axis);
  const std::size_t out_stride = out_dims.stride(axis);
  const std::size_t in_len = in_dims.extent(axis);
  const std::size_t out_len = out_dims.extent(axis);

  // Lines of the *output* tensor correspond 1:1 with lines of the input
  // (all other coordinates equal); enumerate via the output shape with
  // the axis pinned and recompute the input base with the same coords.
  std::array<std::size_t, kMaxRank> lim{};
  for (int a = 0; a < kMaxRank; ++a) lim[a] = out_dims.extent(a);
  lim[axis] = 1;
  std::array<std::size_t, kMaxRank> c{};
  std::vector<double> in_line(in_len);
  for (c[0] = 0; c[0] < lim[0]; ++c[0])
    for (c[1] = 0; c[1] < lim[1]; ++c[1])
      for (c[2] = 0; c[2] < lim[2]; ++c[2])
        for (c[3] = 0; c[3] < lim[3]; ++c[3]) {
          const std::size_t in_base = in_dims.index(c[0], c[1], c[2], c[3]);
          const std::size_t out_base = out_dims.index(c[0], c[1], c[2], c[3]);
          for (std::size_t i = 0; i < in_len; ++i)
            in_line[i] = x[in_base + i * in_stride];
          if (project) {
            for (std::size_t j = 0; j < out_len; ++j) {
              double acc = 0.0;
              for (std::size_t i = 0; i < in_len; ++i)
                acc += m[i * r + j] * in_line[i];
              y[out_base + j * out_stride] = acc;
            }
          } else {
            for (std::size_t i = 0; i < out_len; ++i) {
              double acc = 0.0;
              for (std::size_t j = 0; j < in_len; ++j)
                acc += m[i * r + j] * in_line[j];
              y[out_base + i * out_stride] = acc;
            }
          }
        }
  dims = out_dims;
  return y;
}

/// Stage policy: Tucker factors live in kConfig (they are model state,
/// like an interpolation plan), the quantized core is the kSymbols
/// stream, and kCorrections enforces the bound.
struct TTHRESHCodec {
  using Config = TTHRESHConfig;
  using Artifacts = NoArtifacts;
  static constexpr CompressorId kId = CompressorId::kTTHRESH;
  static constexpr const char* kName = "tthresh";

  template <class T>
  static void encode(const T* data, const Dims& dims, const Config& cfg,
                     ContainerWriter& out, Artifacts*) {
    const int rank = dims.rank();
    const double delta = cfg.error_bound / cfg.quant_factor;
    std::vector<double> core(dims.size());
    for (std::size_t i = 0; i < core.size(); ++i)
      core[i] = static_cast<double>(data[i]);
    Dims core_dims = dims;

    // ST-HOSVD with rank truncation: per mode, eigendecompose the Gram
    // matrix, drop trailing eigenpairs while the cumulative discarded
    // energy stays within a fraction of the quantization-noise budget, and
    // project. Factors are float-rounded so encoder and decoder use
    // bit-identical matrices.
    std::vector<std::vector<double>> factors(static_cast<std::size_t>(rank));
    std::vector<std::uint32_t> mode_rank(static_cast<std::size_t>(rank), 0);
    std::vector<std::uint8_t> has_factor(static_cast<std::size_t>(rank), 0);
    const double energy_budget =
        0.25 * delta * delta * static_cast<double>(dims.size());
    for (int axis = 0; axis < rank; ++axis) {
      const std::size_t n = dims.extent(axis);
      if (n < 2 || n > cfg.max_mode_size) continue;
      std::vector<double> g = mode_gram(core, core_dims, axis);
      std::vector<double> v;
      jacobi_eigen(g, n, v);
      std::vector<std::size_t> idx(n);
      for (std::size_t i = 0; i < n; ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return g[a * n + a] > g[b * n + b];
      });
      // Truncate: discard the smallest eigenvalues within budget.
      std::size_t r = n;
      double discarded = 0.0;
      while (r > 1) {
        const double lam = std::max(0.0, g[idx[r - 1] * n + idx[r - 1]]);
        if (discarded + lam > energy_budget) break;
        discarded += lam;
        --r;
      }
      auto& u = factors[static_cast<std::size_t>(axis)];
      u.resize(n * r);
      for (std::size_t j = 0; j < r; ++j)
        for (std::size_t i = 0; i < n; ++i)
          u[i * r + j] =
              static_cast<double>(static_cast<float>(v[i * n + idx[j]]));
      has_factor[static_cast<std::size_t>(axis)] = 1;
      mode_rank[static_cast<std::size_t>(axis)] = static_cast<std::uint32_t>(r);
      core = ttm(core, core_dims, axis, u, n, r, /*project=*/true);
    }

    // Scalar-quantize the truncated core and zero-run entropy-code it.
    std::vector<std::uint32_t> symbols(core.size());
    for (std::size_t i = 0; i < core.size(); ++i) {
      const std::int64_t q = std::llround(core[i] / (2.0 * delta));
      symbols[i] = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(q) << 1) ^
          static_cast<std::uint64_t>(q >> 63));
      core[i] = 2.0 * delta * static_cast<double>(q);
    }

    // Reconstruct to collect bound-enforcing corrections.
    std::vector<double> recon = core;
    Dims recon_dims = core_dims;
    for (int axis = rank - 1; axis >= 0; --axis) {
      if (has_factor[static_cast<std::size_t>(axis)])
        recon = ttm(recon, recon_dims, axis,
                    factors[static_cast<std::size_t>(axis)], dims.extent(axis),
                    mode_rank[static_cast<std::size_t>(axis)],
                    /*project=*/false);
    }
    const auto corrections = collect_corrections(
        data, dims.size(), cfg.error_bound, cfg.error_bound / 2.0,
        [&](std::size_t i) {
          return static_cast<double>(static_cast<T>(recon[i]));
        });

    ByteWriter& h = out.stage(StageId::kConfig);
    h.put(cfg.error_bound);
    h.put(cfg.quant_factor);
    for (int axis = 0; axis < rank; ++axis) {
      h.put(has_factor[static_cast<std::size_t>(axis)]);
      if (has_factor[static_cast<std::size_t>(axis)]) {
        h.put_varint(mode_rank[static_cast<std::size_t>(axis)]);
        for (double u : factors[static_cast<std::size_t>(axis)])
          h.put(static_cast<float>(u));
      }
    }
    write_raw_chunk(out, rle_encode_symbols(symbols));
    write_corrections_stage(out, corrections);
  }

  template <class T>
  static void decode(const ContainerReader& in, T* out, ThreadPool*) {
    ByteReader h = in.stage(StageId::kConfig);
    const Dims& dims = in.dims();
    const double eb = h.get<double>();
    const double quant_factor = h.get<double>();
    const int rank = dims.rank();
    std::vector<std::vector<double>> factors(static_cast<std::size_t>(rank));
    std::vector<std::uint32_t> mode_rank(static_cast<std::size_t>(rank), 0);
    std::vector<std::uint8_t> has_factor(static_cast<std::size_t>(rank), 0);
    Dims core_dims = dims;
    for (int axis = 0; axis < rank; ++axis) {
      has_factor[static_cast<std::size_t>(axis)] = h.get<std::uint8_t>();
      if (has_factor[static_cast<std::size_t>(axis)]) {
        const std::size_t n = dims.extent(axis);
        const std::size_t rk = static_cast<std::size_t>(h.get_varint());
        if (rk == 0 || rk > n)
          throw DecodeError("tthresh: invalid mode rank");
        mode_rank[static_cast<std::size_t>(axis)] =
            static_cast<std::uint32_t>(rk);
        auto& u = factors[static_cast<std::size_t>(axis)];
        // The factor matrix is read as n*rk floats right below; a rank
        // the stream cannot back is an allocation bomb. (n >= rk >= 1
        // here, so the division is safe.)
        if (rk > h.remaining() / sizeof(float) / n)
          throw DecodeError("tthresh: factor matrix exceeds stream");
        u.resize(n * rk);
        for (auto& e : u) e = static_cast<double>(h.get<float>());
        core_dims = with_extent(core_dims, axis, rk);
      }
    }
    const auto symbols =
        rle_decode_symbols(read_raw_chunk(in), core_dims.size());
    if (symbols.size() != core_dims.size())
      throw DecodeError("tthresh core size mismatch");

    const double delta = eb / quant_factor;
    std::vector<double> core(core_dims.size());
    for (std::size_t i = 0; i < core.size(); ++i) {
      const std::uint64_t zz = symbols[i];
      const std::int64_t q =
          static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
      core[i] = 2.0 * delta * static_cast<double>(q);
    }
    for (int axis = rank - 1; axis >= 0; --axis) {
      if (has_factor[static_cast<std::size_t>(axis)])
        core = ttm(core, core_dims, axis,
                   factors[static_cast<std::size_t>(axis)], dims.extent(axis),
                   mode_rank[static_cast<std::size_t>(axis)],
                   /*project=*/false);
    }

    for (std::size_t i = 0; i < core.size(); ++i)
      out[i] = static_cast<T>(core[i]);
    apply_corrections_stage(in, out, dims.size(), eb / 2.0, "tthresh");
  }
};

}  // namespace

template <class T>
std::vector<std::uint8_t> tthresh_compress(const T* data, const Dims& dims,
                                           const TTHRESHConfig& cfg) {
  return codec_seal<TTHRESHCodec>(data, dims, cfg);
}

template <class T>
Field<T> tthresh_decompress(std::span<const std::uint8_t> archive,
                            ThreadPool* pool) {
  return codec_open<TTHRESHCodec, T>(archive, pool);
}

template <class T>
void tthresh_decompress_into(std::span<const std::uint8_t> archive, T* out,
                             const Dims& expect, ThreadPool* pool) {
  codec_open_into<TTHRESHCodec, T>(archive, out, expect, pool);
}

template std::vector<std::uint8_t> tthresh_compress<float>(
    const float*, const Dims&, const TTHRESHConfig&);
template std::vector<std::uint8_t> tthresh_compress<double>(
    const double*, const Dims&, const TTHRESHConfig&);
template Field<float> tthresh_decompress<float>(std::span<const std::uint8_t>,
                                                ThreadPool*);
template Field<double> tthresh_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
template void tthresh_decompress_into<float>(std::span<const std::uint8_t>,
                                             float*, const Dims&, ThreadPool*);
template void tthresh_decompress_into<double>(std::span<const std::uint8_t>,
                                              double*, const Dims&,
                                              ThreadPool*);

}  // namespace qip
