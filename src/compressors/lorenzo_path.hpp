#pragma once

// Multidimensional Lorenzo compression path — SZ3's fallback predictor
// for small error bounds (paper Sec. VI-B: "SZ3 switches to the
// multidimensional Lorenzo predictor"). Shared by the SZ3-like compressor
// and the sampling-based predictor selector.
//
// Out-of-bounds stencil values are treated as zero (SZ-style implicit
// zero padding), and prediction uses reconstructed values so the decoder
// stays in lockstep. QP never applies on this path: Lorenzo indices lack
// the stage-grid clustering QP exploits (paper Sec. VI-B).

#include <array>
#include <cstdint>
#include <vector>

#include "core/qp.hpp"
#include "quant/quantizer.hpp"
#include "util/dims.hpp"
#include "util/status.hpp"

namespace qip {

/// Encode (kEncode=true) or decode the whole field with rank-d Lorenzo.
/// On encode, `data` is replaced by its reconstruction and symbols are
/// appended; on decode, symbols are consumed from `cursor`.
template <class T, bool kEncode>
void lorenzo_walk(T* data, const Dims& dims, LinearQuantizer<T>& quant,
                  std::vector<std::uint32_t>& symbols, std::size_t& cursor) {
  if constexpr (!kEncode) {
    // The walk consumes exactly one symbol per point; checking once here
    // keeps hostile archives from driving the cursor out of bounds.
    if (cursor > symbols.size() || symbols.size() - cursor < dims.size())
      throw DecodeError("lorenzo: symbol stream shorter than field");
  }
  const int rank = dims.rank();
  const std::uint32_t nsub = (1u << rank) - 1;  // nonempty axis subsets

  // Precompute, per subset, the linear offset and the sign of its term.
  std::array<std::size_t, 16> off{};
  std::array<int, 16> sign{};
  for (std::uint32_t s = 1; s <= nsub; ++s) {
    std::size_t o = 0;
    int bits = 0;
    for (int a = 0; a < rank; ++a) {
      if ((s >> a) & 1) {
        o += dims.stride(a);
        ++bits;
      }
    }
    off[s] = o;
    sign[s] = (bits % 2 == 1) ? 1 : -1;
  }

  const std::int32_t radius = quant.radius();
  std::array<std::size_t, kMaxRank> c{};
  const std::size_t e0 = dims.extent(0), e1 = dims.extent(1);
  const std::size_t e2 = dims.extent(2), e3 = dims.extent(3);
  for (c[0] = 0; c[0] < e0; ++c[0])
    for (c[1] = 0; c[1] < e1; ++c[1])
      for (c[2] = 0; c[2] < e2; ++c[2])
        for (c[3] = 0; c[3] < e3; ++c[3]) {
          const std::size_t idx = dims.index(c[0], c[1], c[2], c[3]);
          std::uint32_t zmask = 0;  // axes where the stencil falls off
          for (int a = 0; a < rank; ++a)
            if (c[a] == 0) zmask |= 1u << a;

          T pred{};
          for (std::uint32_t s = 1; s <= nsub; ++s) {
            if (s & zmask) continue;  // zero-padded term
            pred += static_cast<T>(sign[s]) * data[idx - off[s]];
          }

          if constexpr (kEncode) {
            T recon;
            const std::uint32_t code = quant.quantize(data[idx], pred, &recon);
            data[idx] = recon;
            symbols.push_back(qp_encode_symbol(code, 0, radius));
          } else {
            const std::uint32_t code =
                qp_decode_symbol(symbols[cursor++], 0, radius);
            data[idx] = quant.recover(code, pred);
          }
        }
}

}  // namespace qip
