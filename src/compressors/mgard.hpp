#pragma once

// MGARD-like compressor (Ainsworth et al., multilevel techniques for
// compression and reduction of scientific data).
//
// Unlike the SZ3/QoZ/HPEZ feedback loop, this is a *global* hierarchical
// transform: multilinear (piecewise-linear, dimension-by-dimension)
// interpolation coefficients are computed level-wise from the original
// data, quantized with conservative level-dependent bins (coarse-level
// errors propagate through the hierarchy to many points), and the error
// bound is enforced exactly by a final correction pass that re-runs the
// decoder on the encode side and patches every violating point — the
// practical stand-in for MGARD's norm-based bin selection. This makes
// the compressor noticeably slower and less ratio-efficient than the
// SZ3 family, matching its placement in the paper's Table I/II, while
// the quantization indices still live on the same stage grids, so the
// QP hook applies unchanged.

#include <cstdint>
#include <span>
#include <vector>

#include "compressors/core/options.hpp"
#include "compressors/core/tiles.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

struct MGARDConfig : CodecOptions {
  /// Level bin schedule: eb_l = eb * max(fine_fraction * decay^(l-1),
  /// floor_fraction). Conservative by design; the correction pass
  /// guarantees the bound regardless.
  double fine_fraction = 0.6;
  double decay = 0.75;
  double floor_fraction = 0.05;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> mgard_compress(const T* data, const Dims& dims,
                                         const MGARDConfig& cfg,
                                         IndexArtifacts* artifacts = nullptr);

template <class T>
[[nodiscard]] Field<T> mgard_decompress(std::span<const std::uint8_t> archive,
                                        ThreadPool* pool = nullptr);

/// Decompress straight into caller-owned storage of shape `expect`
/// (a dims mismatch throws DecodeError). Avoids the temporary Field +
/// copy of the allocating overload; used by the chunked decoder.
template <class T>
void mgard_decompress_into(std::span<const std::uint8_t> archive, T* out,
                           const Dims& expect, ThreadPool* pool = nullptr);

/// Resolution reduction -- the capability that distinguishes MGARD in the
/// paper's Table I. Decodes only interpolation levels > `skip_levels`
/// and returns the coarse grid (stride 2^skip_levels per axis,
/// ceil-divided extents), reading just the prefix of the coefficient
/// stream. With skip_levels == 0 this matches mgard_decompress() except
/// that the full-resolution correction pass is skipped, so the strict
/// pointwise bound only applies to the skip_levels == 0 full decode.
template <class T>
[[nodiscard]] Field<T> mgard_decompress_reduced(std::span<const std::uint8_t> archive,
                                  int skip_levels);

/// Progressive preview — mgard_decompress_reduced on the container-v3
/// per-level chunks: a level-`level` preview decodes only the coarse
/// chunk prefix (`stats` reports how many payload bytes that touched)
/// instead of the whole coefficient stream. For level > 1 the
/// finest-grid correction pass is skipped (like the reduced decode), so
/// the bound is the hierarchy's per-level budget, not the patched worst
/// case; a level-1 preview applies corrections and equals a full decode.
template <class T>
[[nodiscard]] Field<T> mgard_decompress_preview(
    std::span<const std::uint8_t> archive, int level,
    ThreadPool* pool = nullptr, PartialDecodeStats* stats = nullptr);

extern template Field<float> mgard_decompress_reduced<float>(
    std::span<const std::uint8_t>, int);
extern template Field<double> mgard_decompress_reduced<double>(
    std::span<const std::uint8_t>, int);
extern template Field<float> mgard_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
extern template Field<double> mgard_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);

extern template std::vector<std::uint8_t> mgard_compress<float>(
    const float*, const Dims&, const MGARDConfig&, IndexArtifacts*);
extern template std::vector<std::uint8_t> mgard_compress<double>(
    const double*, const Dims&, const MGARDConfig&, IndexArtifacts*);
extern template Field<float> mgard_decompress<float>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template Field<double> mgard_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template void mgard_decompress_into<float>(std::span<const std::uint8_t>,
                                                  float*, const Dims&,
                                                  ThreadPool*);
extern template void mgard_decompress_into<double>(
    std::span<const std::uint8_t>, double*, const Dims&, ThreadPool*);

}  // namespace qip
