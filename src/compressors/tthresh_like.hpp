#pragma once

// TTHRESH-like Tucker/HOSVD compressor (Ballester-Ripoll et al.,
// TVCG'19 family): per-mode Gram-matrix eigendecomposition (cyclic
// Jacobi) yields orthonormal factor matrices; the data is projected to a
// Tucker core whose coefficients decay rapidly and are scalar-quantized
// and entropy-coded (real TTHRESH bitplane-codes them — the ratio/speed
// placement is what matters: strong ratios, by far the slowest
// compression in Table IV). Factors are stored quantized; a correction
// pass enforces the pointwise bound, which real TTHRESH does not
// guarantee natively.

#include <cstdint>
#include <span>
#include <vector>

#include "compressors/core/options.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

struct TTHRESHConfig : CodecOptions {
  double quant_factor = 3.0;  ///< core bin = eb / quant_factor
  /// Modes longer than this skip decorrelation (identity factor): the
  /// Jacobi eigensolve is O(n^3) and pointless past a few hundred rows.
  std::size_t max_mode_size = 512;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> tthresh_compress(const T* data, const Dims& dims,
                                           const TTHRESHConfig& cfg);

template <class T>
[[nodiscard]] Field<T> tthresh_decompress(std::span<const std::uint8_t> archive,
                                          ThreadPool* pool = nullptr);

/// Decompress straight into caller-owned storage of shape `expect`
/// (a dims mismatch throws DecodeError). Avoids the temporary Field +
/// copy of the allocating overload; used by the chunked decoder.
template <class T>
void tthresh_decompress_into(std::span<const std::uint8_t> archive, T* out,
                             const Dims& expect, ThreadPool* pool = nullptr);

extern template std::vector<std::uint8_t> tthresh_compress<float>(
    const float*, const Dims&, const TTHRESHConfig&);
extern template std::vector<std::uint8_t> tthresh_compress<double>(
    const double*, const Dims&, const TTHRESHConfig&);
extern template Field<float> tthresh_decompress<float>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template Field<double> tthresh_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template void tthresh_decompress_into<float>(
    std::span<const std::uint8_t>, float*, const Dims&, ThreadPool*);
extern template void tthresh_decompress_into<double>(
    std::span<const std::uint8_t>, double*, const Dims&, ThreadPool*);

}  // namespace qip
