#pragma once

// Shared auto-tuning utilities for the QoZ- and HPEZ-like compressors:
// centered sub-box sampling, level-wise error-bound schedules, and the
// rate-distortion trial that selects the (alpha, beta) schedule.

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "compressors/interp_engine.hpp"
#include "compressors/plan.hpp"
#include "encode/huffman.hpp"
#include "predict/multilevel.hpp"
#include "util/field.hpp"
#include "util/stats.hpp"

namespace qip {

/// eb multiplier for level l under the (alpha, beta) schedule:
/// eb_l = eb * max(alpha^-(l-1), 1/beta). Coarse-level errors propagate
/// through interpolation to many points, so coarse bins shrink.
inline double level_eb_scale(int level, double alpha, double beta) {
  return std::max(std::pow(alpha, -(level - 1)), 1.0 / beta);
}

/// Copy a centered sub-box (up to `edge` per axis) used for tuning trials.
template <class T>
Field<T> centered_sample_box(const T* data, const Dims& dims,
                             std::size_t edge) {
  std::array<std::size_t, kMaxRank> ext{1, 1, 1, 1}, lo{0, 0, 0, 0};
  for (int a = 0; a < dims.rank(); ++a) {
    ext[a] = std::min(dims.extent(a), edge);
    lo[a] = (dims.extent(a) - ext[a]) / 2;
  }
  Dims sub = [&] {
    switch (dims.rank()) {
      case 1: return Dims{ext[0]};
      case 2: return Dims{ext[0], ext[1]};
      case 3: return Dims{ext[0], ext[1], ext[2]};
      default: return Dims{ext[0], ext[1], ext[2], ext[3]};
    }
  }();
  Field<T> out(sub);
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < ext[0]; ++c[0])
    for (c[1] = 0; c[1] < ext[1]; ++c[1])
      for (c[2] = 0; c[2] < ext[2]; ++c[2])
        for (c[3] = 0; c[3] < ext[3]; ++c[3])
          out[sub.index(c[0], c[1], c[2], c[3])] =
              data[dims.index(lo[0] + c[0], lo[1] + c[1], lo[2] + c[2],
                              lo[3] + c[3])];
  return out;
}

/// Pick (alpha, beta) by a rate-distortion Lagrangian on a sampled
/// sub-box: J = log2(mse) + 2 * bits-per-point. At high rate one extra
/// bit per point buys a factor-4 MSE reduction, so the optimum balances
/// the terms. `per_level` supplies the already-tuned interpolation
/// choices (reused across trial schedules).
template <class T>
std::pair<double, double> tune_alpha_beta(const T* data, const Dims& dims,
                                          double error_bound,
                                          std::int32_t radius,
                                          const std::vector<LevelPlan>& per_level) {
  static constexpr std::pair<double, double> kCands[] = {
      {1.0, 1.0}, {1.25, 2.0}, {1.5, 4.0}, {2.0, 6.0}};
  Field<T> box = centered_sample_box(data, dims, 64);
  const Dims& sd = box.dims();
  const int levels = interpolation_level_count(sd);

  double best_j = std::numeric_limits<double>::infinity();
  std::pair<double, double> best = kCands[0];
  for (const auto& [alpha, beta] : kCands) {
    Field<T> work = box.clone();
    InterpPlan plan;
    plan.levels.resize(static_cast<std::size_t>(levels));
    for (int l = 1; l <= levels; ++l) {
      LevelPlan lp =
          per_level.empty()
              ? LevelPlan{}
              : per_level[std::min<std::size_t>(l - 1, per_level.size() - 1)];
      lp.eb_scale = level_eb_scale(l, alpha, beta);
      plan.levels[static_cast<std::size_t>(l - 1)] = lp;
    }
    LinearQuantizer<T> quant(error_bound, radius);
    const auto res =
        InterpEngine<T>::encode(work.data(), sd, plan, error_bound, quant,
                                QPConfig{});
    const double bits =
        static_cast<double>(huffman_cost_bits(res.symbols)) +
        static_cast<double>(quant.outlier_count()) * sizeof(T) * 8.0;
    const double m = mse(box.span(), work.span());
    const double j = (m > 0 ? std::log2(m) : -200.0) +
                     2.0 * bits / static_cast<double>(sd.size());
    if (j < best_j) {
      best_j = j;
      best = {alpha, beta};
    }
  }
  return best;
}

}  // namespace qip
