#pragma once

// Shared multilevel interpolation engine (paper Sec. IV-A, Algorithm 1).
//
// SZ3-, QoZ-, HPEZ- and MGARD-like compressors all traverse the field
// level by level, predict each point by interpolation from already
// processed points, quantize the residual, and keep the *reconstructed*
// value in the working buffer so later predictions see exactly what the
// decompressor will see. This class implements that traversal once, for
// both directions (encode/decode template parameter), with:
//
//  * sequential direction orders (SZ3/QoZ) and parity-class
//    multi-dimensional interpolation (HPEZ-like),
//  * optional block-wise plans with cross-block stencil guards
//    (HPEZ-like 32^3 adaptive blocks),
//  * per-level error-bound scaling (QoZ-like),
//  * inline quantization-index prediction (the paper's QP, Algorithm 1
//    line 7) driven by core/qp.hpp.
//
// Decode replays the identical traversal, so QP compensations are
// recomputed from already-recovered indices — information symmetry is by
// construction.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "compressors/plan.hpp"
#include "core/qp.hpp"
#include "core/tiles.hpp"
#include "predict/interpolation.hpp"
#include "predict/multilevel.hpp"
#include "quant/quantizer.hpp"
#include "simd/dispatch.hpp"
#include "util/dims.hpp"
#include "util/scratch.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace qip {

/// Runtime A/B gate for the parallel level walk: QIP_INTERP_FORCE_SEQ=1
/// forces every stage onto the sequential path even when a pool is
/// supplied (the worker-count byte-identity oracle, and the perf-triage
/// escape hatch — the compile-time sibling of QIP_INTERP_FORCE_GENERIC).
/// Defined in src/compressors/interp_par.cpp.
[[nodiscard]] bool interp_force_seq();

/// Test hook: >= 0 overrides the environment (1 = forced sequential,
/// 0 = parallel allowed); -1 restores the QIP_INTERP_FORCE_SEQ value.
void set_interp_force_seq_override(int v);

/// One contiguous run of the encoded symbol stream: the symbols of one
/// interpolation level, or of one tile within a tiled level (tile ==
/// kWholeDomainTile for untiled runs). Recorded by the encoder in
/// traversal order and sealed 1:1 into container-v3 payload chunks, so
/// partial decodes can seek by level/tile without replaying the walk.
struct SymbolSpan {
  int level = 0;
  std::uint64_t tile = kWholeDomainTile;
  std::size_t begin = 0;          ///< first symbol index
  std::size_t count = 0;          ///< symbols in the run
  std::size_t outlier_begin = 0;  ///< quantizer outliers before the run
  std::size_t outlier_count = 0;  ///< outliers the run's symbols consume
};

template <class T>
class InterpEngine {
 public:
  struct EncodeResult {
    /// Entropy-coder input, in traversal order (anchor, then levels).
    std::vector<std::uint32_t> symbols;
    /// Spatial array of stored codes (q + radius; 0 = unpredictable),
    /// retained only when requested — used by the characterization tools.
    std::vector<std::uint32_t> codes;
    /// Spatial arrangement of the encoded symbols (Q' in the paper),
    /// retained with `codes`; lets the Fig. 5 bench compare regional
    /// entropy before and after quantization index prediction.
    std::vector<std::uint32_t> symbols_spatial;
  };

  /// Compress `data` in place (it holds the reconstruction afterwards).
  /// The symbol buffer is preallocated to the exact point count and
  /// written through a cursor — the traversal visits every point exactly
  /// once, so no push_back bookkeeping is needed in the hot loop.
  ///
  /// With `tiles` active, levels <= tiles->max_level are traversed tile
  /// by tile with the cross-tile stencil guard (see run_stage), making
  /// each tile's symbols decodable on their own. `spans` (when given)
  /// receives one SymbolSpan per level / per tile in traversal order —
  /// the contract container v3 seals into its payload directory.
  ///
  /// `pool` (when given) fans eligible stages out across the workers via
  /// run_stage_par — bytes stay identical to the sequential walk at
  /// every worker count; see that function for the partition rules.
  [[nodiscard]] static EncodeResult encode(T* data, const Dims& dims, const InterpPlan& plan,
                             double base_eb, LinearQuantizer<T>& quant,
                             const QPConfig& qp, bool keep_codes = false,
                             const TileLayout* tiles = nullptr,
                             std::vector<SymbolSpan>* spans = nullptr,
                             ThreadPool* pool = nullptr) {
    EncodeResult res;
    res.symbols.assign(dims.size(), 0);
    // The spatial codes array is QP state: compensation reads same-stage
    // neighbors out of it. Without QP it is write-only, so skip the
    // allocation (and every store into it) unless the caller keeps it.
    const bool qp_live = qp.enabled && qp.dimension != QPDimension::kNone;
    std::vector<std::uint32_t> codes;
    std::uint32_t* codes_p = nullptr;
    if (keep_codes) {
      codes.assign(dims.size(), 0);
      codes_p = codes.data();
    } else if (qp_live) {
      // Same contract as decode below: compensation never reads an entry
      // the stage traversal has not already written, so the scratch needs
      // neither zeroing nor a fresh allocation per call.
      codes_p = scratch_cache<std::uint32_t>(dims.size());
    }
    if (keep_codes) res.symbols_spatial.assign(dims.size(), 0);
    walk<true>(data, dims, plan, base_eb, quant, qp, res.symbols.data(),
               codes_p, keep_codes ? &res.symbols_spatial : nullptr, tiles,
               spans, /*stop_level=*/1, pool);
    if (keep_codes) res.codes = std::move(codes);
    return res;
  }

  /// Reverse of encode(); fills `data` with the reconstruction. Throws
  /// DecodeError when `symbols` holds fewer entries than the traversal
  /// consumes (hostile archives must not drive the cursor out of bounds).
  ///
  /// `tiles` must replay the layout the archive was encoded under.
  /// `stop_level` > 1 decodes only the levels coarser than or equal to
  /// it — the progressive-preview path: the traversal consumes exactly
  /// grid_point_count(dims, stop_level) symbols and fills exactly the
  /// points whose coordinates are multiples of 2^(stop_level-1); other
  /// points of `data` are left untouched.
  static void decode(std::span<const std::uint32_t> symbols, const Dims& dims,
                     const InterpPlan& plan, double base_eb,
                     LinearQuantizer<T>& quant, const QPConfig& qp, T* data,
                     const TileLayout* tiles = nullptr, int stop_level = 1,
                     ThreadPool* pool = nullptr) {
    if (stop_level < 1) stop_level = 1;
    if (symbols.size() < grid_point_count(dims, stop_level))
      throw DecodeError("interp: symbol stream shorter than field");
    const bool qp_live = qp.enabled && qp.dimension != QPDimension::kNone;
    // Deliberately uninitialized (and reused across calls on this
    // thread): compensation only ever reads entries a same-stage point
    // wrote earlier in traversal order (the avail gates floor at the
    // stage grid / block entry), so neither zero-filling 4 bytes per
    // point nor a fresh fault-in per decode would ever be observed.
    std::uint32_t* codes =
        qp_live ? scratch_cache<std::uint32_t>(dims.size()) : nullptr;
    walk<false>(data, dims, plan, base_eb, quant, qp, symbols.data(), codes,
                nullptr, tiles, nullptr, stop_level, pool);
  }

  /// Decode the symbols of one tile chunk (one level, one tile box) into
  /// `data`, for the region path: the untiled levels must already be
  /// decoded into `data` (via decode() with stop_level just above the
  /// tiled levels), and coarser tiled levels of the same tile must have
  /// been applied first. The caller positions the quantizer's outlier
  /// cursor from the chunk directory. Throws DecodeError when the symbol
  /// count does not match the tile's stage-point count — the guard that
  /// keeps hostile directories from driving the cursor out of bounds.
  static void decode_tile(std::span<const std::uint32_t> symbols,
                          const Dims& dims, const InterpPlan& plan,
                          double base_eb, LinearQuantizer<T>& quant,
                          const QPConfig& qp, T* data, const TileLayout& tiles,
                          int level, const Box& box) {
    const int level_count = static_cast<int>(plan.levels.size());
    if (level < 1 || level > level_count)
      throw DecodeError("interp: tile chunk level outside plan");
    if (symbols.size() != tile_point_count(dims, plan, level, box))
      throw DecodeError("interp: tile chunk symbol count mismatch");
    const LevelPlan& lp = plan.levels[static_cast<std::size_t>(level - 1)];
    const std::size_t stride = std::size_t{1} << (level - 1);
    const bool qp_live = qp.enabled && qp.dimension != QPDimension::kNone;
    std::uint32_t* codes =
        qp_live ? scratch_cache<std::uint32_t>(dims.size()) : nullptr;
    quant.set_error_bound(base_eb * lp.eb_scale);
    std::size_t cursor = 0;
    for_each_stage(dims, stride, lp, level, [&](const StageCtx& ctx) {
      run_stage<false>(data, dims, ctx, lp.kind, quant, qp, symbols.data(),
                       cursor, codes, nullptr, /*blocked=*/true, box.lo,
                       box.hi, tiles.known_stride());
    });
    quant.set_error_bound(base_eb);
  }

  /// Points whose every coordinate is a multiple of 2^(level-1): the
  /// grid fully known once levels >= `level` are decoded, and exactly
  /// the symbol count a stop_level = `level` decode consumes.
  static std::size_t grid_point_count(const Dims& dims, int level) {
    if (level > 64) level = 64;
    const std::size_t s = level >= 64 ? ~std::size_t{0} >> 1
                                      : std::size_t{1} << (level - 1);
    std::size_t n = 1;
    for (int a = 0; a < dims.rank(); ++a)
      n *= (dims.extent(a) - 1) / s + 1;
    return n;
  }

  /// Symbols the walk consumes for the whole-domain run of `level`: the
  /// points processed at that level, plus the anchor for the coarsest.
  static std::size_t level_symbol_count(const Dims& dims, int level,
                                        int level_count) {
    return grid_point_count(dims, level) - grid_point_count(dims, level + 1) +
           (level == level_count ? 1 : 0);
  }

  /// Stage points of `level` inside the half-open box — the exact symbol
  /// count of one tile chunk.
  static std::size_t tile_point_count(const Dims& dims, const InterpPlan& plan,
                                      int level, const Box& box) {
    const LevelPlan& lp = plan.levels[static_cast<std::size_t>(level - 1)];
    const std::size_t stride = std::size_t{1} << (level - 1);
    std::size_t total = 0;
    for_each_stage(dims, stride, lp, level, [&](const StageCtx& ctx) {
      std::size_t n = 1;
      for (int a = 0; a < kMaxRank; ++a) {
        const std::size_t hi = std::min(box.hi[a], dims.extent(a));
        const std::size_t first =
            first_on(ctx.g.start[a], ctx.g.step[a], box.lo[a]);
        n *= first < hi ? (hi - 1 - first) / ctx.g.step[a] + 1 : 0;
      }
      total += n;
    });
    return total;
  }

  /// Dry-run prediction of one stage on a subsample of its points, using
  /// original (unquantized) values for both targets and stencils. Returns
  /// a bit-cost proxy: sum over sampled points of log2(2|q|+1)+1. Used by
  /// the QoZ-like per-level tuner and the HPEZ-like block tuner to rank
  /// candidate plans cheaply and deterministically.
  static double sample_stage_cost(const T* data, const Dims& dims,
                                  const StageGrid& g, const LevelPlan& lp,
                                  double eb, std::size_t sample_step);

  /// Total sampled bit-cost of one whole level under candidate plan `lp`,
  /// optionally restricted to box [lo, hi). The workhorse of the QoZ-like
  /// per-level tuner and the HPEZ-like per-block tuner.
  static double level_cost_sample(const T* data, const Dims& dims, int level,
                                  const LevelPlan& lp, double eb,
                                  std::size_t sample_step,
                                  const std::array<std::size_t, kMaxRank>* lo =
                                      nullptr,
                                  const std::array<std::size_t, kMaxRank>* hi =
                                      nullptr);

 private:
  /// Symbol cursor type: encode writes symbols, decode reads them.
  template <bool kEncode>
  using SymPtr = std::conditional_t<kEncode, std::uint32_t*, const std::uint32_t*>;

  /// Per-stage constants for interpolation + QP.
  struct StageCtx {
    StageGrid g;
    std::uint32_t md_mask = 0;  // parity-class axes; 0 => sequential stage
    int back_axis = -1, left_axis = -1, top_axis = -1;
    std::size_t back_off = 0, left_off = 0, top_off = 0;
  };

  static constexpr std::size_t kNoBlock = ~std::size_t{0};

  /// Fill the StageCtx QP fields from the shared axis-assignment rule.
  static void assign_qp_axes(StageCtx& ctx, const Dims& dims) {
    const QPAxes ax = qip::assign_qp_axes(ctx.g, dims, ctx.back_axis);
    ctx.back_axis = ax.back;
    ctx.left_axis = ax.left;
    ctx.top_axis = ax.top;
    ctx.back_off = ax.back_off;
    ctx.left_off = ax.left_off;
    ctx.top_off = ax.top_off;
  }

  /// Build the sequential-order stage for position k of `order`.
  static StageCtx make_seq_stage(const Dims& dims, std::size_t stride,
                                 const LevelPlan& lp, int k, int level) {
    int order[kMaxRank] = {0, 1, 2, 3};
    for (int a = 0; a < dims.rank(); ++a) order[a] = lp.order[a];
    StageCtx ctx;
    ctx.g = make_stage_grid(dims, stride,
                            std::span<const int>(order, dims.rank()), k, level);
    ctx.back_axis = ctx.g.dim;
    assign_qp_axes(ctx, dims);
    return ctx;
  }

  /// Build the parity-class stage for axis set `mask` (HPEZ-like md mode).
  static StageCtx make_md_stage(const Dims& dims, std::size_t stride,
                                std::uint32_t mask, int level) {
    StageCtx ctx;
    ctx.md_mask = mask;
    ctx.g.stride = stride;
    ctx.g.level = level;
    for (int a = 0; a < kMaxRank; ++a) {
      ctx.g.start[a] = 0;
      ctx.g.step[a] = 1;
    }
    for (int a = 0; a < dims.rank(); ++a) {
      ctx.g.start[a] = (mask >> a) & 1 ? stride : 0;
      ctx.g.step[a] = 2 * stride;
    }
    // Interpolation "direction" for QP purposes: fastest axis in the class.
    for (int a = dims.rank() - 1; a >= 0; --a) {
      if ((mask >> a) & 1) {
        ctx.g.dim = a;
        break;
      }
    }
    ctx.back_axis = ctx.g.dim;
    assign_qp_axes(ctx, dims);
    return ctx;
  }

  /// 1-D interpolation along `axis` with spacing `s`, honoring the SZ3
  /// boundary rules (cubic -> quadratic -> linear -> copy) and an
  /// optional usability predicate for cross-block guards.
  template <class Usable>
  static T interp_1d(const T* data, const Dims& dims,
                     const std::array<std::size_t, kMaxRank>& c,
                     std::size_t idx, int axis, std::size_t s,
                     InterpKind kind, Usable&& usable) {
    const std::size_t x = c[axis];
    const std::size_t n = dims.extent(axis);
    const std::ptrdiff_t st =
        static_cast<std::ptrdiff_t>(s * dims.stride(axis));

    // b = f(x-s) always exists (x is an odd multiple of s, so x >= s).
    const T b = data[idx - st];
    T cv{}, av{}, dv{};
    const bool has_c = x + s < n && usable(axis, x + s);
    if (has_c) cv = data[idx + st];
    const bool has_a = x >= 3 * s && usable(axis, x - 3 * s);
    if (has_a) av = data[idx - 3 * st];
    const bool has_d = x + 3 * s < n && usable(axis, x + 3 * s);
    if (has_d) dv = data[idx + 3 * st];

    if (!has_c) return b;
    if (kind == InterpKind::kLinear) return interp_linear(b, cv);
    if (has_a && has_d) return interp_cubic(av, b, cv, dv);
    if (has_a) return interp_quad(cv, b, av);
    if (has_d) return interp_quad(b, cv, dv);
    return interp_linear(b, cv);
  }

  /// Full prediction for a stage point: sequential stages interpolate
  /// along the stage direction; parity-class stages average the 1-D
  /// interpolations along every class axis.
  template <class Usable>
  static T predict_point(const T* data, const Dims& dims, const StageCtx& ctx,
                         const std::array<std::size_t, kMaxRank>& c,
                         std::size_t idx, InterpKind kind, Usable&& usable) {
    if (ctx.md_mask == 0) {
      return interp_1d(data, dims, c, idx, ctx.g.dim, ctx.g.stride, kind,
                       usable);
    }
    double acc = 0.0;
    int cnt = 0;
    for (int a = 0; a < dims.rank(); ++a) {
      if ((ctx.md_mask >> a) & 1) {
        acc += static_cast<double>(
            interp_1d(data, dims, c, idx, a, ctx.g.stride, kind, usable));
        ++cnt;
      }
    }
    return static_cast<T>(acc / cnt);
  }

  /// Process every point of one stage, restricted to [lo, hi) when
  /// `blocked` (HPEZ-like). kEncode selects direction. The dominant
  /// unblocked sequential case takes the specialized row-major path.
  ///
  /// `tile_known` != 0 switches the cross-boundary stencil guard to the
  /// stricter tile-independence rule: outside [lo, hi) only points of
  /// the globally-known grid (every coordinate a multiple of
  /// `tile_known` = the tiling's known stride) are usable. Unlike the
  /// HPEZ block guard it admits neither earlier blocks nor the
  /// level-entry 2s grid, because a region decode reconstructs *no*
  /// tiled-level point outside the requested tiles — not even at
  /// coarser tiled levels.
  template <bool kEncode>
  static void run_stage(T* data, const Dims& dims, const StageCtx& ctx,
                        InterpKind kind, LinearQuantizer<T>& quant,
                        const QPConfig& qp, SymPtr<kEncode> syms,
                        std::size_t& cursor, std::uint32_t* codes,
                        std::vector<std::uint32_t>* sym_spatial, bool blocked,
                        const std::array<std::size_t, kMaxRank>& lo,
                        const std::array<std::size_t, kMaxRank>& hi,
                        std::size_t tile_known = 0,
                        ThreadPool* pool = nullptr) {
#ifndef QIP_INTERP_FORCE_GENERIC  // A/B escape hatch for perf triage
    if (!blocked && ctx.md_mask == 0) {
      if (pool != nullptr && sym_spatial == nullptr && !interp_force_seq() &&
          run_stage_par<kEncode>(data, dims, ctx, kind, quant, qp, syms,
                                 cursor, codes, pool))
        return;
      run_stage_seq<kEncode>(data, dims, ctx, kind, quant, qp, syms, cursor,
                             codes, sym_spatial);
      return;
    }
#endif
    const std::int32_t radius = quant.radius();
    const std::size_t s2 = 2 * ctx.g.stride;

    // Cross-block stencil guard. A stencil point differs from the current
    // point only along `axis`; it is usable iff it lies
    //  * inside the current block (earlier stage of the same block), or
    //  * in an earlier block along `axis` (blocks are processed in
    //    lexicographic order, so with all other block coordinates equal
    //    the smaller-axis block is already fully processed), or
    //  * on the level-entry grid: *every* coordinate a multiple of 2s —
    //    the along-axis coordinate must divide 2s AND the current point's
    //    other coordinates must too, because the stencil point inherits
    //    them. Anything else in a forward block is unprocessed at decode
    //    time and must not be read.
    // Tile mode (`tile_known` != 0) replaces the last two rules with the
    // known-grid rule documented above.
    const std::array<std::size_t, kMaxRank>* cur = nullptr;
    auto usable = [&](int axis, std::size_t y) -> bool {
      if (!blocked) return true;
      if (y >= lo[axis] && y < hi[axis]) return true;
      if (tile_known != 0) {
        if (y % tile_known != 0) return false;
        for (int a = 0; a < dims.rank(); ++a)
          if (a != axis && (*cur)[a] % tile_known != 0) return false;
        return true;
      }
      if (y < lo[axis]) return true;  // earlier block along this axis
      if (y % s2 != 0) return false;
      for (int a = 0; a < dims.rank(); ++a)
        if (a != axis && (*cur)[a] % s2 != 0) return false;
      return true;
    };

    auto visit = [&](const std::array<std::size_t, kMaxRank>& c,
                     std::size_t idx) {
      cur = &c;
      const T pred =
          predict_point(data, dims, ctx, c, idx, kind, usable);

      QPNeighborhood nb;
      auto avail = [&](int axis, std::size_t off) -> bool {
        if (axis < 0 || off == 0) return false;
        const std::size_t floor_coord =
            blocked ? std::max(ctx.g.start[axis],
                               first_on(ctx.g.start[axis], ctx.g.step[axis],
                                        lo[axis]))
                    : ctx.g.start[axis];
        return c[axis] >= floor_coord + ctx.g.step[axis];
      };
      nb.back = ctx.back_off;
      nb.left = ctx.left_off;
      nb.top = ctx.top_off;
      nb.avail_back = avail(ctx.back_axis, ctx.back_off);
      nb.avail_left = avail(ctx.left_axis, ctx.left_off);
      nb.avail_top = avail(ctx.top_axis, ctx.top_off);

      const std::int64_t comp =
          qp_compensation(codes, idx, nb, qp, ctx.g.level, radius);

      if constexpr (kEncode) {
        T recon;
        const std::uint32_t code = quant.quantize(data[idx], pred, &recon);
        data[idx] = recon;
        if (codes) codes[idx] = code;
        const std::uint32_t sym = qp_encode_symbol(code, comp, radius);
        if (sym_spatial) (*sym_spatial)[idx] = sym;
        syms[cursor++] = sym;
      } else {
        const std::uint32_t code =
            qp_decode_symbol(syms[cursor++], comp, radius);
        if (codes) codes[idx] = code;
        data[idx] = quant.recover(code, pred);
      }
    };

    if (blocked) {
      for_each_stage_point_in_box(dims, ctx.g, lo, hi, visit);
    } else {
      for_each_stage_point(dims, ctx.g, visit);
    }
  }

  /// Geometry of one unblocked sequential stage: per-axis stage-grid
  /// extents and stage-local symbol strides. The strides serve double
  /// duty — cstr[a] is both the symbol-stream distance between adjacent
  /// grid layers along `a` and the compact-codes stride — which is what
  /// makes every symbol's position format-determined: the row with grid
  /// coordinates k lands at sum(k[a] * cstr[a]), independent of who
  /// computes it. That identity is the backbone of run_stage_par.
  struct StageShape {
    std::array<std::size_t, kMaxRank> gext{};  ///< stage-grid extents
    std::array<std::size_t, kMaxRank> cstr{};  ///< symbol/compact strides
    std::size_t cnt = 0;    ///< points per row (last-axis grid extent)
    std::size_t rows = 0;   ///< number of rows
    std::size_t total = 0;  ///< rows * cnt: symbols this stage emits
    bool empty = true;      ///< stage has no points on this grid
  };

  static StageShape stage_shape(const Dims& dims, const StageGrid& g) {
    StageShape sh;
    for (int a = 0; a < dims.rank(); ++a)
      if (g.start[a] >= dims.extent(a)) return sh;
    std::size_t acc = 1;
    for (int a = kMaxRank - 1; a >= 0; --a) {
      sh.cstr[a] = acc;
      sh.gext[a] = (dims.extent(a) - g.start[a] - 1) / g.step[a] + 1;
      acc *= sh.gext[a];
    }
    sh.cnt = sh.gext[dims.rank() - 1];
    sh.total = acc;
    sh.rows = acc / sh.cnt;
    sh.empty = false;
    return sh;
  }

  /// One partition of a stage for the parallel walk: odometer axes run
  /// [from[a], to[a]), row points run [j0, min(j1, cnt)). `spec_axis`
  /// (encode speculation only) floors the QP availability along that
  /// axis at from[spec_axis] instead of the stage start, so the
  /// partition's first layer emits compensation-free symbols rather than
  /// reading codes across the partition boundary. The full stage is the
  /// slice {from = start, to = extents, j0 = 0, j1 = ~0, spec_axis = -1}.
  struct StageSlice {
    std::array<std::size_t, kMaxRank> from{};
    std::array<std::size_t, kMaxRank> to{};
    std::size_t j0 = 0;
    std::size_t j1 = ~std::size_t{0};
    int spec_axis = -1;
    /// Neighboring slices run concurrently on other workers, so the
    /// SIMD row kernels must keep their full-width load footprints
    /// inside this slice's own predicted lanes (RowArgs::shared_*).
    bool shared = false;
  };

  static StageSlice whole_slice(const Dims& dims, const StageGrid& g) {
    StageSlice sl;
    for (int a = 0; a < kMaxRank; ++a) {
      sl.from[a] = g.start[a];
      sl.to[a] = dims.extent(a);
    }
    return sl;
  }

  /// Specialized traversal for the dominant case: unblocked sequential
  /// stage, whole domain, one thread. Thin wrapper over run_stage_slice
  /// with the full-stage slice; see there for the traversal itself.
  template <bool kEncode>
  static void run_stage_seq(T* data, const Dims& dims, const StageCtx& ctx,
                            InterpKind kind, LinearQuantizer<T>& quant,
                            const QPConfig& qp, SymPtr<kEncode> syms,
                            std::size_t& cursor, std::uint32_t* codes,
                            std::vector<std::uint32_t>* sym_spatial) {
    const StageShape sh = stage_shape(dims, ctx.g);
    if (sh.empty) return;
    run_stage_slice<kEncode>(data, dims, ctx, kind, quant, qp, syms, cursor,
                             codes, sym_spatial, sh, whole_slice(dims, ctx.g),
                             [](std::size_t, std::size_t) {});
    cursor += sh.total;
  }

  /// Row-major traversal of one slice of an unblocked sequential stage.
  /// Rows walk the fastest axis at element stride 1; the stencil
  /// boundary rules (cubic -> quadratic -> linear -> copy) and the QP
  /// neighbor availability are resolved per row (or per row segment when
  /// the interpolation axis *is* the row axis), not per point, and the
  /// linear index advances incrementally instead of being recomputed from
  /// coordinates at every point. Produces exactly the same symbols, codes
  /// and reconstruction as the generic path.
  ///
  /// `sym_base` is the stage's first symbol position; each row's symbols
  /// land at sym_base + row_off + j with row_off from StageShape::cstr,
  /// so disjoint slices write disjoint, format-determined ranges.
  /// `seg_fn(row_off, pos)` fires once per row before its first point —
  /// the hook run_stage_par uses to reposition per-worker outlier
  /// cursors (decode) and record outlier segment positions (encode).
  template <bool kEncode, class SegFn>
  static void run_stage_slice(T* data, const Dims& dims, const StageCtx& ctx,
                              InterpKind kind, LinearQuantizer<T>& quant,
                              const QPConfig& qp, SymPtr<kEncode> syms,
                              std::size_t sym_base, std::uint32_t* codes,
                              std::vector<std::uint32_t>* sym_spatial,
                              const StageShape& sh, const StageSlice& sl,
                              SegFn&& seg_fn) {
    const StageGrid& g = ctx.g;
    const int last = dims.rank() - 1;
    const std::size_t s = g.stride;
    const int d = g.dim;
    const int level = g.level;
    const std::int32_t radius = quant.radius();
    const bool qp_active = qp.enabled && level <= qp.max_level &&
                           qp.dimension != QPDimension::kNone;
    std::uint32_t* const codes_p = codes;
    // Codes written by this stage are read back only by same-level QP
    // compensation (and by the characterization tools); when neither
    // consumer exists the stores are dead — skip them.
    std::uint32_t* const cstore =
        (qp_active || sym_spatial != nullptr) ? codes_p : nullptr;

    const std::size_t start_l = g.start[last];
    const std::size_t step_l = g.step[last];
    const std::size_t cnt = sh.cnt;
    const std::size_t jlo = sl.j0;
    const std::size_t jhi = std::min(sl.j1, cnt);
    if (jlo >= jhi) return;

    // Compact stage-local codes layout (see RowArgs::ci0): every QP
    // neighbor offset is one stage-grid step (multilevel.hpp), so codes
    // can index by grid coordinate instead of spatial position — rows
    // become unit-stride and the traffic shrinks from the whole field's
    // span to the stage's own footprint. The characterization path
    // (sym_spatial) keeps the spatial layout its consumers expect.
    const bool compact = cstore != nullptr && sym_spatial == nullptr;
    const std::array<std::size_t, kMaxRank>& cstr = sh.cstr;
    const std::size_t cback = ctx.back_axis >= 0 ? cstr[ctx.back_axis] : 0;
    const std::size_t cleft = ctx.left_axis >= 0 ? cstr[ctx.left_axis] : 0;
    const std::size_t ctop = ctx.top_axis >= 0 ? cstr[ctx.top_axis] : 0;

    // Stencil geometry. When the interpolation axis is the row axis, the
    // boundary rules change along the row at fixed positions: jc = first
    // point whose forward neighbor f(x+s) falls off the grid, jd = first
    // point whose far forward neighbor f(x+3s) does (jd <= jc).
    const std::size_t n_l = dims.extent(last);
    std::ptrdiff_t st;
    std::size_t jc = 0, jd = 0;
    if (d == last) {
      st = static_cast<std::ptrdiff_t>(s);
      jc = n_l > 2 * s ? (n_l - 2 * s - 1) / (2 * s) + 1 : 0;
      jd = n_l > 4 * s ? (n_l - 4 * s - 1) / (2 * s) + 1 : 0;
    } else {
      st = static_cast<std::ptrdiff_t>(s * dims.stride(d));
    }

    // SIMD row-kernel eligibility for this stage. Stride-1/2 rows run
    // the direct vector loads; wider spacings (levels >= 2 along the row
    // axis) go through the kernels' gather path, which stages each tile
    // into contiguous scratch rows first. The characterization path
    // (sym_spatial) and exotic radii stay on the engine's own loops. See
    // simd/dispatch.hpp for the identity contract, QIP_SIMD_FORCE_SCALAR
    // and QIP_SIMD_TIER.
    const simd::Kernels<T>* kt = simd::kernels<T>();
    if (kt && (sym_spatial != nullptr || radius <= 0 || radius > (1 << 20)))
      kt = nullptr;
    // Decode must chain point-by-point when a QP-read axis runs along
    // the row: compensation at point j then consumes codes decoded by
    // this very segment. Encode never needs this (a block's codes are
    // all committed before its compensations are read).
    bool qp_serial = false;
    if (kt && qp_active) {
      switch (qp.dimension) {
        case QPDimension::k1DBack:
          qp_serial = ctx.back_axis == last;
          break;
        case QPDimension::k1DTop:
          qp_serial = ctx.top_axis == last;
          break;
        case QPDimension::k1DLeft:
          qp_serial = ctx.left_axis == last;
          break;
        case QPDimension::k2D:
          qp_serial = ctx.left_axis == last || ctx.top_axis == last;
          break;
        case QPDimension::k3D:
          qp_serial = ctx.back_axis == last || ctx.left_axis == last ||
                      ctx.top_axis == last;
          break;
        case QPDimension::kNone:
          break;
      }
    }

    std::array<std::size_t, kMaxRank> c{};
    for (int a = 0; a < kMaxRank; ++a) c[a] = sl.from[a];

    for (;;) {
      std::size_t base = 0;
      for (int a = 0; a < last; ++a) base += c[a] * dims.stride(a);
      // Stage-local row offset: symbol position of the row's j == 0
      // point relative to the stage base, and (compact mode) the row's
      // codes base — one value, by the cstr double duty above.
      std::size_t row_off = 0;
      for (int a = 0; a < last; ++a)
        row_off += (c[a] - g.start[a]) / g.step[a] * cstr[a];
      const std::size_t cbase = row_off;
      std::size_t cur = sym_base + row_off + jlo;
      seg_fn(row_off, cur);

      // QP neighbor availability is constant along the row except on the
      // row axis, where only j == 0 lacks its stage-grid predecessor.
      // Along the speculation axis the floor is the slice entry, not the
      // stage start: the partition's first layer pretends its
      // predecessor layer does not exist (compensation 0) so pass 1
      // never reads codes owned by another partition. run_stage_par's
      // serial pass 2 recomputes those rows' symbols afterwards.
      QPNeighborhood nbR;
      nbR.back = compact ? cback : ctx.back_off;
      nbR.left = compact ? cleft : ctx.left_off;
      nbR.top = compact ? ctop : ctx.top_off;
      auto row_avail = [&](int axis, std::size_t off) {
        if (axis < 0 || off == 0) return false;
        if (axis == last) return true;
        const std::size_t fl =
            axis == sl.spec_axis ? sl.from[axis] : g.start[axis];
        return c[axis] >= fl + g.step[axis];
      };
      nbR.avail_back = row_avail(ctx.back_axis, ctx.back_off);
      nbR.avail_left = row_avail(ctx.left_axis, ctx.left_off);
      nbR.avail_top = row_avail(ctx.top_axis, ctx.top_off);
      QPNeighborhood nb0 = nbR;
      if (ctx.back_axis == last) nb0.avail_back = false;
      if (ctx.left_axis == last) nb0.avail_left = false;
      if (ctx.top_axis == last) nb0.avail_top = false;

      auto emit = [&](std::size_t idx, std::size_t ci, T pred,
                      const QPNeighborhood& nb) {
        const std::int64_t comp =
            qp_active ? qp_compensation(codes_p, ci, nb, qp, level, radius)
                      : 0;
        if constexpr (kEncode) {
          T recon;
          const std::uint32_t code = quant.quantize(data[idx], pred, &recon);
          data[idx] = recon;
          if (cstore) cstore[ci] = code;
          const std::uint32_t sym = qp_encode_symbol(code, comp, radius);
          if (sym_spatial) (*sym_spatial)[idx] = sym;
          syms[cur++] = sym;
        } else {
          const std::uint32_t code = qp_decode_symbol(syms[cur++], comp, radius);
          if (cstore) cstore[ci] = code;
          data[idx] = quant.recover(code, pred);
        }
      };

      // Run points j0..j1 of the row through one prediction kernel,
      // clamped to the slice's point range. Long interior segments hand
      // off to the dispatched SIMD row kernel (bit-identical by
      // contract); j == 0 stays scalar because it alone uses the nb0
      // neighborhood.
      auto run_seg = [&](std::size_t j0, std::size_t j1, PredKind pk,
                         auto&& predfn) {
        j0 = std::max(j0, jlo);
        j1 = std::min(j1, jhi);
        if (j0 >= j1) return;
        const std::size_t cistep = compact ? 1 : step_l;
        std::size_t i = base + start_l + j0 * step_l;
        std::size_t ci = compact ? cbase + j0 : i;
        std::size_t j = j0;
        if (j == 0) {
          emit(i, ci, predfn(i), nb0);
          ++j;
          i += step_l;
          ci += cistep;
        }
        if (kt != nullptr && j1 - j >= simd::kMinKernelPoints) {
          simd::RowArgs<T> ra;
          ra.data = data;
          ra.codes = cstore;
          ra.total = dims.size();
          ra.i0 = i;
          ra.count = j1 - j;
          ra.estep = step_l;
          ra.ci0 = ci;
          ra.cestep = cistep;
          ra.st = st;
          ra.kind = pk;
          ra.quant = &quant;
          ra.qp = &qp;
          ra.nb = nbR;
          ra.level = level;
          ra.radius = radius;
          ra.qp_active = qp_active;
          ra.qp_serial = qp_serial;
          // Concurrent-neighbor load guards: the preceding lane is
          // another worker's only when this kernel segment starts the
          // row's j-slice; the trailing lanes are foreign whenever the
          // segment runs to the slice boundary (next j-slice, or the
          // next row in memory for row-partitioned slices).
          ra.shared_lo = sl.shared && jlo > 0 && j == jlo;
          ra.shared_hi = sl.shared && j1 == jhi;
          if constexpr (kEncode) {
            ra.syms_out = syms + cur;
            kt->encode_row(ra);
          } else {
            ra.syms_in = syms + cur;
            kt->decode_row(ra);
          }
          cur += ra.count;
          return;
        }
        for (; j < j1; ++j, i += step_l, ci += cistep)
          emit(i, ci, predfn(i), nbR);
      };

      auto p_copy = [&](std::size_t i) { return data[i - st]; };
      auto p_lin = [&](std::size_t i) {
        return interp_linear(data[i - st], data[i + st]);
      };
      auto p_cubic = [&](std::size_t i) {
        return interp_cubic(data[i - 3 * st], data[i - st], data[i + st],
                            data[i + 3 * st]);
      };
      auto p_quad_a = [&](std::size_t i) {
        return interp_quad(data[i + st], data[i - st], data[i - 3 * st]);
      };
      auto p_quad_d = [&](std::size_t i) {
        return interp_quad(data[i - st], data[i + st], data[i + 3 * st]);
      };

      if (d != last) {
        // Whole row shares one kernel: the stencil moves along axis d,
        // whose coordinate is fixed within the row.
        const std::size_t x = c[d];
        const std::size_t n_d = dims.extent(d);
        const bool has_c = x + s < n_d;
        const bool has_a = x >= 3 * s;
        const bool has_d = x + 3 * s < n_d;
        if (!has_c) {
          run_seg(0, cnt, PredKind::kCopy, p_copy);
        } else if (kind == InterpKind::kLinear) {
          run_seg(0, cnt, PredKind::kLinear, p_lin);
        } else if (has_a && has_d) {
          run_seg(0, cnt, PredKind::kCubic, p_cubic);
        } else if (has_a) {
          run_seg(0, cnt, PredKind::kQuadA, p_quad_a);
        } else if (has_d) {
          run_seg(0, cnt, PredKind::kQuadD, p_quad_d);
        } else {
          run_seg(0, cnt, PredKind::kLinear, p_lin);
        }
      } else if (kind == InterpKind::kLinear) {
        run_seg(0, std::min(jc, cnt), PredKind::kLinear, p_lin);
        run_seg(std::min(jc, cnt), cnt, PredKind::kCopy, p_copy);
      } else {
        // j == 0 has no backward far neighbor f(x-3s).
        if (jc == 0) {
          run_seg(0, 1, PredKind::kCopy, p_copy);
        } else if (jd > 0) {
          run_seg(0, 1, PredKind::kQuadD, p_quad_d);
        } else {
          run_seg(0, 1, PredKind::kLinear, p_lin);
        }
        run_seg(1, std::min(jd, cnt), PredKind::kCubic, p_cubic);
        run_seg(std::max<std::size_t>(1, jd), std::min(jc, cnt),
                PredKind::kQuadA, p_quad_a);
        run_seg(std::max<std::size_t>(1, jc), cnt, PredKind::kCopy, p_copy);
      }

      int a = last - 1;
      for (; a >= 0; --a) {
        c[a] += g.step[a];
        if (c[a] < sl.to[a]) break;
        c[a] = sl.from[a];
      }
      if (a < 0) break;
    }
  }

  /// Stages smaller than this stay sequential: the fan-out bookkeeping
  /// (outlier splice / per-row prefix sums) costs more than it saves.
  static constexpr std::size_t kParMinPoints = std::size_t{1} << 15;

  /// Drive one unblocked sequential stage across `pool` with
  /// worker-count-independent bytes. Returns false when no safe
  /// partition exists — the caller falls back to run_stage_seq.
  ///
  /// Symbol (and compact-code) positions are format-determined — row
  /// with grid coordinates k starts at sum(k[a] * cstr[a]) — so every
  /// worker writes exactly where the sequential walk would. The only
  /// cross-row coupling is the QP compensation chain, handled by one of
  /// three schemes:
  ///
  ///  * Free-axis partitioning: the chain axes are the availability
  ///    gates qp_compensation actually reads for this stage's
  ///    QPDimension (a degenerate axis — off == 0 — contributes
  ///    compensation 0 and is not a chain axis). Any other grid axis
  ///    with >= 2 layers partitions the rows into contiguous coordinate
  ///    ranges whose chain reads are all internal: a neighbor along a
  ///    chain axis differs only along that axis, so it shares the
  ///    partition-axis coordinate.
  ///  * j-slicing: when only the row axis is chain-free, split every
  ///    row's point range [j_w, j_{w+1}) instead. Chain reads land at
  ///    the same j of an earlier row — again internal, because every
  ///    partition walks all rows in order.
  ///  * Encode speculation (no chain-free axis at all, e.g. a rank-2
  ///    k2D stage): partition along the widest axis anyway, suppress
  ///    availability across the boundary (the slice's spec_axis), and
  ///    serially recompute the boundary layers' symbols afterwards from
  ///    the committed codes (fix_boundary_layers). Codes, the
  ///    reconstruction and the outlier list are compensation-independent
  ///    — qp_encode_symbol returns 0 iff code == 0 — so pass 1's only
  ///    provisional output is boundary-row symbols. Decode cannot
  ///    speculate (codes are derived from compensations there), so such
  ///    stages decode sequentially.
  ///
  /// Outliers keep the sequential order by construction: encode records
  /// them in worker-local quantizers with per-row segment positions and
  /// splices the segments back sorted by symbol position; decode gives
  /// each worker a cursor-bearing view of the shared table, repositioned
  /// per row from the per-row zero-symbol prefix sums (symbol 0 is the
  /// only outlier consumer on a well-formed stream; a hostile stream
  /// that wraps a nonzero symbol onto code 0 reads bounded garbage or
  /// throws DecodeError — the same guarantee the sequential walk gives,
  /// though the garbage may differ).
  template <bool kEncode>
  static bool run_stage_par(T* data, const Dims& dims, const StageCtx& ctx,
                            InterpKind kind, LinearQuantizer<T>& quant,
                            const QPConfig& qp, SymPtr<kEncode> syms,
                            std::size_t& cursor, std::uint32_t* codes,
                            ThreadPool* pool) {
    const StageGrid& g = ctx.g;
    const int last = dims.rank() - 1;
    const StageShape sh = stage_shape(dims, g);
    if (sh.empty) return false;
    if (sh.total < kParMinPoints) return false;
    unsigned width = pool->size();
    if (const unsigned cap = ThreadPool::width_cap(); cap && cap < width)
      width = cap;
    if (width < 2) return false;

    // The chain axes for this stage (see the contract above).
    const bool qp_active = qp.enabled && g.level <= qp.max_level &&
                           qp.dimension != QPDimension::kNone;
    bool chain[kMaxRank] = {false, false, false, false};
    if (qp_active) {
      const bool b = ctx.back_axis >= 0 && ctx.back_off > 0;
      const bool l = ctx.left_axis >= 0 && ctx.left_off > 0;
      const bool t = ctx.top_axis >= 0 && ctx.top_off > 0;
      switch (qp.dimension) {
        case QPDimension::k1DBack:
          if (b) chain[ctx.back_axis] = true;
          break;
        case QPDimension::k1DTop:
          if (t) chain[ctx.top_axis] = true;
          break;
        case QPDimension::k1DLeft:
          if (l) chain[ctx.left_axis] = true;
          break;
        case QPDimension::k2D:
          // qp2d_compensation requires left AND top; back is unused.
          if (l && t) {
            chain[ctx.left_axis] = true;
            chain[ctx.top_axis] = true;
          }
          break;
        case QPDimension::k3D:
          if (b && l && t) {
            chain[ctx.back_axis] = true;
            chain[ctx.left_axis] = true;
            chain[ctx.top_axis] = true;
          }
          break;
        case QPDimension::kNone:
          break;
      }
    }

    // Partition scheme: prefer the widest chain-free odometer axis, then
    // j-slicing, then (encode only) speculation along the widest axis.
    int p = -1;
    for (int a = 0; a < last; ++a) {
      if (chain[a] || sh.gext[a] < 2) continue;
      if (p < 0 || sh.gext[a] > sh.gext[p]) p = a;
    }
    bool jslice = false;
    bool speculate = false;
    if (p < 0) {
      if (!chain[last] && sh.cnt >= width * 2 * simd::kMinKernelPoints) {
        jslice = true;
      } else if constexpr (kEncode) {
        for (int a = 0; a < last; ++a)
          if (sh.gext[a] >= 2 && (p < 0 || sh.gext[a] > sh.gext[p])) p = a;
        if (p < 0) return false;
        speculate = true;
      } else {
        return false;
      }
    }

    // Units to split: grid layers along p, or points per row (j-slicing).
    const std::size_t units = jslice ? sh.cnt : sh.gext[p];
    if (static_cast<std::size_t>(width) > units)
      width = static_cast<unsigned>(units);
    if (speculate && static_cast<std::size_t>(width) > units / 2)
      width = static_cast<unsigned>(units / 2);  // >= 1 non-boundary layer
    if (width < 2) return false;

    const std::size_t sym_base = cursor;
    auto make_slice = [&](unsigned w) {
      StageSlice sl = whole_slice(dims, g);
      sl.shared = true;
      if (jslice) {
        sl.j0 = units * w / width;
        sl.j1 = units * (w + 1) / width;
      } else {
        sl.from[p] = g.start[p] + units * w / width * g.step[p];
        sl.to[p] = std::min(dims.extent(p),
                            g.start[p] + units * (w + 1) / width * g.step[p]);
        if (speculate) sl.spec_axis = p;
      }
      return sl;
    };

    if constexpr (!kEncode) {
      // Per-row zero-symbol prefix sums position each worker's outlier
      // cursor; j-slicing additionally needs the zeros before each
      // slice boundary within the row.
      std::vector<std::size_t> pz(sh.rows + 1, 0);
      std::vector<std::size_t> cut;
      if (jslice) cut.assign(sh.rows * width, 0);
      pool->parallel_for(width, [&](std::size_t w) {
        const std::size_t r0 = sh.rows * w / width;
        const std::size_t r1 = sh.rows * (w + 1) / width;
        for (std::size_t r = r0; r < r1; ++r) {
          const std::uint32_t* row = syms + sym_base + r * sh.cnt;
          std::size_t z = 0;
          if (jslice) {
            for (unsigned v = 0; v < width; ++v) {
              cut[r * width + v] = z;
              const std::size_t jb = units * (v + 1) / width;
              for (std::size_t j = units * v / width; j < jb; ++j)
                z += row[j] == 0;
            }
          } else {
            for (std::size_t j = 0; j < sh.cnt; ++j) z += row[j] == 0;
          }
          pz[r + 1] = z;
        }
      });
      for (std::size_t r = 0; r < sh.rows; ++r) pz[r + 1] += pz[r];

      const std::size_t out_base = quant.outlier_cursor();
      pool->parallel_for(width, [&](std::size_t w) {
        LinearQuantizer<T> vq = LinearQuantizer<T>::view_of(quant);
        run_stage_slice<false>(
            data, dims, ctx, kind, vq, qp, syms, sym_base, codes, nullptr, sh,
            make_slice(static_cast<unsigned>(w)),
            [&](std::size_t row_off, std::size_t) {
              const std::size_t r = row_off / sh.cnt;
              vq.set_outlier_cursor(out_base + pz[r] +
                                    (jslice ? cut[r * width + w] : 0));
            });
      });
      quant.set_outlier_cursor(out_base + pz[sh.rows]);
      cursor = sym_base + sh.total;
      return true;
    } else {
      // Encode: worker-local quantizers record outliers; one segment per
      // outlier-producing row, keyed by the row slice's symbol position
      // (strictly increasing in traversal order), then spliced back
      // sorted so the parent's list is byte-identical to sequential.
      struct OutSeg {
        std::size_t pos;    ///< symbol position of the row slice
        std::size_t begin;  ///< first outlier in the worker's local list
        std::size_t count;
        unsigned w;
      };
      std::vector<std::vector<T>> louts(width);
      std::vector<std::vector<OutSeg>> lsegs(width);
      pool->parallel_for(width, [&](std::size_t w) {
        LinearQuantizer<T> lq(quant.error_bound(), quant.radius());
        std::vector<OutSeg>& segs = lsegs[w];
        std::size_t seg_pos = 0;
        std::size_t mark = 0;
        auto flush = [&](std::size_t next_pos) {
          const std::size_t n = lq.outlier_count();
          if (n > mark)
            segs.push_back({seg_pos, mark, n - mark,
                            static_cast<unsigned>(w)});
          mark = n;
          seg_pos = next_pos;
        };
        run_stage_slice<true>(data, dims, ctx, kind, lq, qp, syms, sym_base,
                              codes, nullptr, sh,
                              make_slice(static_cast<unsigned>(w)),
                              [&](std::size_t, std::size_t pos) { flush(pos); });
        flush(0);
        louts[w] = lq.take_outliers();
      });

      std::size_t nseg = 0;
      for (const auto& v : lsegs) nseg += v.size();
      std::vector<OutSeg> all;
      all.reserve(nseg);
      for (const auto& v : lsegs) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end(),
                [](const OutSeg& x, const OutSeg& y) { return x.pos < y.pos; });
      for (const OutSeg& sg : all)
        quant.append_outliers(
            std::span<const T>(louts[sg.w]).subspan(sg.begin, sg.count));

      if (speculate)
        fix_boundary_layers(dims, ctx, qp, syms, sym_base, codes, sh, p, width,
                            quant.radius());
      cursor = sym_base + sh.total;
      return true;
    }
  }

  /// Pass 2 of the encode speculation: serially recompute the symbols of
  /// every partition-boundary layer from the committed compact codes,
  /// now with the true cross-partition availability. Codes, the
  /// reconstruction and the outliers are compensation-independent, so
  /// only these rows' symbols change — and a symbol flips between zero
  /// and nonzero only with its code, which pass 1 already fixed, so the
  /// outlier correspondence is untouched.
  static void fix_boundary_layers(const Dims& dims, const StageCtx& ctx,
                                  const QPConfig& qp, std::uint32_t* syms,
                                  std::size_t sym_base, std::uint32_t* codes,
                                  const StageShape& sh, int p, unsigned width,
                                  std::int32_t radius) {
    const StageGrid& g = ctx.g;
    const int last = dims.rank() - 1;
    const int level = g.level;
    const simd::Kernels<T>* kt = simd::kernels<T>();
    if (kt && (radius <= 0 || radius > (1 << 20) || kt->sym_fix_row == nullptr))
      kt = nullptr;
    const std::size_t cback = ctx.back_axis >= 0 ? sh.cstr[ctx.back_axis] : 0;
    const std::size_t cleft = ctx.left_axis >= 0 ? sh.cstr[ctx.left_axis] : 0;
    const std::size_t ctop = ctx.top_axis >= 0 ? sh.cstr[ctx.top_axis] : 0;

    for (unsigned w = 1; w < width; ++w) {
      const std::size_t layer = sh.gext[p] * w / width;
      std::array<std::size_t, kMaxRank> c{};
      for (int a = 0; a < kMaxRank; ++a) c[a] = g.start[a];
      c[p] = g.start[p] + layer * g.step[p];
      for (;;) {
        std::size_t row_off = 0;
        for (int a = 0; a < last; ++a)
          row_off += (c[a] - g.start[a]) / g.step[a] * sh.cstr[a];

        QPNeighborhood nb;
        nb.back = cback;
        nb.left = cleft;
        nb.top = ctop;
        auto row_avail = [&](int axis, std::size_t off) {
          if (axis < 0 || off == 0) return false;
          if (axis == last) return true;
          // The true rule: the boundary layer's predecessor along p
          // (suppressed in pass 1) exists, because layer >= 1.
          return c[axis] >= g.start[axis] + g.step[axis];
        };
        nb.avail_back = row_avail(ctx.back_axis, cback);
        nb.avail_left = row_avail(ctx.left_axis, cleft);
        nb.avail_top = row_avail(ctx.top_axis, ctop);
        QPNeighborhood nb0 = nb;
        if (ctx.back_axis == last) nb0.avail_back = false;
        if (ctx.left_axis == last) nb0.avail_left = false;
        if (ctx.top_axis == last) nb0.avail_top = false;

        std::size_t ci = row_off;
        std::size_t pos = sym_base + row_off;
        std::size_t j = 0;
        if (sh.cnt > 0) {
          syms[pos] = qp_encode_symbol(
              codes[ci], qp_compensation(codes, ci, nb0, qp, level, radius),
              radius);
          ++j;
          ++ci;
          ++pos;
        }
        if (kt != nullptr && sh.cnt - j >= simd::kMinKernelPoints) {
          simd::RowArgs<T> ra;
          ra.data = nullptr;
          ra.codes = codes;
          ra.total = 0;
          ra.i0 = 0;
          ra.count = sh.cnt - j;
          ra.estep = 1;
          ra.ci0 = ci;
          ra.cestep = 1;
          ra.st = 0;
          ra.kind = PredKind::kCopy;
          ra.quant = nullptr;
          ra.qp = &qp;
          ra.nb = nb;
          ra.level = level;
          ra.radius = radius;
          ra.qp_active = true;
          ra.qp_serial = false;
          ra.syms_out = syms + pos;
          kt->sym_fix_row(ra);
          j = sh.cnt;
        }
        for (; j < sh.cnt; ++j, ++ci, ++pos)
          syms[pos] = qp_encode_symbol(
              codes[ci], qp_compensation(codes, ci, nb, qp, level, radius),
              radius);

        int a = last - 1;
        for (; a >= 0; --a) {
          if (a == p) continue;
          c[a] += g.step[a];
          if (c[a] < dims.extent(a)) break;
          c[a] = g.start[a];
        }
        if (a < 0) break;
      }
    }
  }

  static std::size_t first_on(std::size_t start, std::size_t step,
                              std::size_t at_least) {
    if (at_least <= start) return start;
    const std::size_t k = (at_least - start + step - 1) / step;
    return start + k * step;
  }

  /// Enumerate the stages of `lp` at stride s and feed them to `fn`.
  template <class F>
  static void for_each_stage(const Dims& dims, std::size_t stride,
                             const LevelPlan& lp, int level, F&& fn) {
    if (!lp.md) {
      for (int k = 0; k < dims.rank(); ++k)
        fn(make_seq_stage(dims, stride, lp, k, level));
      return;
    }
    const std::uint32_t nmask = 1u << dims.rank();
    for (int pc = 1; pc <= dims.rank(); ++pc) {
      for (std::uint32_t mask = 1; mask < nmask; ++mask) {
        if (std::popcount(mask) == pc)
          fn(make_md_stage(dims, stride, mask, level));
      }
    }
  }

  template <bool kEncode>
  static void walk(T* data, const Dims& dims, const InterpPlan& plan,
                   double base_eb, LinearQuantizer<T>& quant,
                   const QPConfig& qp, SymPtr<kEncode> syms,
                   std::uint32_t* codes,
                   std::vector<std::uint32_t>* sym_spatial,
                   const TileLayout* tiles = nullptr,
                   std::vector<SymbolSpan>* spans = nullptr,
                   int stop_level = 1, ThreadPool* pool = nullptr) {
    std::size_t cursor = 0;
    std::size_t span_begin = 0;
    std::size_t span_out = 0;
    auto record_span = [&](int level, std::uint64_t tile) {
      if (!spans) return;
      spans->push_back({level, tile, span_begin, cursor - span_begin, span_out,
                        quant.outlier_count() - span_out});
      span_begin = cursor;
      span_out = quant.outlier_count();
    };

    // Anchor: the origin, predicted as 0, never QP-compensated. It rides
    // in the coarsest level's span.
    quant.set_error_bound(base_eb);
    if constexpr (kEncode) {
      T recon;
      const std::uint32_t code = quant.quantize(data[0], T{0}, &recon);
      data[0] = recon;
      if (codes) codes[0] = code;
      const std::uint32_t sym = qp_encode_symbol(code, 0, quant.radius());
      if (sym_spatial) (*sym_spatial)[0] = sym;
      syms[cursor++] = sym;
    } else {
      const std::uint32_t code =
          qp_decode_symbol(syms[cursor++], 0, quant.radius());
      if (codes) codes[0] = code;
      data[0] = quant.recover(code, T{0});
    }

    const int level_count = static_cast<int>(plan.levels.size());
    const std::array<std::size_t, kMaxRank> whole_lo{0, 0, 0, 0};
    std::array<std::size_t, kMaxRank> whole_hi{};
    for (int a = 0; a < kMaxRank; ++a) whole_hi[a] = dims.extent(a);

    for (int level = level_count; level >= stop_level; --level) {
      const std::size_t stride = std::size_t{1} << (level - 1);
      const LevelPlan& lp = plan.levels[static_cast<std::size_t>(level - 1)];
      quant.set_error_bound(base_eb * lp.eb_scale);

      if (tiles && tiles->tiled(level) && !plan.blockwise(level)) {
        // Tiled level: every tile runs all its stages under the strict
        // tile-independence guard before the next tile, in the grid's
        // lexicographic id order — the order the v3 directory seals.
        const TileGrid grid(dims, tiles->tile_size);
        const std::size_t known = tiles->known_stride();
        for (std::uint64_t t = 0; t < grid.total; ++t) {
          const Box box = grid.box(t, dims);
          for_each_stage(dims, stride, lp, level, [&](const StageCtx& ctx) {
            run_stage<kEncode>(data, dims, ctx, lp.kind, quant, qp, syms,
                               cursor, codes, sym_spatial, /*blocked=*/true,
                               box.lo, box.hi, known);
          });
          record_span(level, t);
        }
        continue;
      }

      if (!plan.blockwise(level)) {
        for_each_stage(dims, stride, lp, level, [&](const StageCtx& ctx) {
          run_stage<kEncode>(data, dims, ctx, lp.kind, quant, qp, syms,
                             cursor, codes, sym_spatial, /*blocked=*/false,
                             whole_lo, whole_hi, /*tile_known=*/0, pool);
        });
        record_span(level, kWholeDomainTile);
        continue;
      }

      // Block-wise traversal (HPEZ-like): lexicographic block order, each
      // block fully processed (all its stages) before the next.
      const std::size_t bs = plan.block_size;
      std::array<std::size_t, kMaxRank> nblk{1, 1, 1, 1};
      for (int a = 0; a < dims.rank(); ++a)
        nblk[a] = (dims.extent(a) + bs - 1) / bs;
      const auto& choice =
          plan.block_choice[static_cast<std::size_t>(level - 1)];
      std::size_t bidx = 0;
      std::array<std::size_t, kMaxRank> b{};
      for (b[0] = 0; b[0] < nblk[0]; ++b[0])
        for (b[1] = 0; b[1] < nblk[1]; ++b[1])
          for (b[2] = 0; b[2] < nblk[2]; ++b[2])
            for (b[3] = 0; b[3] < nblk[3]; ++b[3]) {
              std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
              std::array<std::size_t, kMaxRank> hi{1, 1, 1, 1};
              for (int a = 0; a < kMaxRank; ++a) {
                if (a < dims.rank()) {
                  lo[a] = b[a] * bs;
                  hi[a] = std::min(lo[a] + bs, dims.extent(a));
                } else {
                  lo[a] = 0;
                  hi[a] = dims.extent(a);
                }
              }
              LevelPlan blp = plan.candidates[choice[bidx]];
              blp.eb_scale = lp.eb_scale;
              for_each_stage(dims, stride, blp, level,
                             [&](const StageCtx& ctx) {
                               run_stage<kEncode>(data, dims, ctx, blp.kind,
                                                  quant, qp, syms, cursor,
                                                  codes, sym_spatial,
                                                  /*blocked=*/true, lo, hi);
                             });
              ++bidx;
            }
      record_span(level, kWholeDomainTile);
    }
    quant.set_error_bound(base_eb);
  }
};

template <class T>
double InterpEngine<T>::sample_stage_cost(const T* data, const Dims& dims,
                                          const StageGrid& g,
                                          const LevelPlan& lp, double eb,
                                          std::size_t sample_step) {
  StageCtx ctx;
  ctx.g = g;
  ctx.back_axis = g.dim;
  if (lp.md) {
    // Rebuild the class mask from the grid starts.
    for (int a = 0; a < dims.rank(); ++a)
      if (g.start[a] == g.stride) ctx.md_mask |= 1u << a;
  }
  auto usable = [](int, std::size_t) { return true; };

  // Subsampled grid: inflate every step by sample_step.
  StageGrid sg = g;
  for (int a = 0; a < dims.rank(); ++a) sg.step[a] *= sample_step;

  double bits = 0.0;
  std::size_t count = 0;
  for_each_stage_point(dims, sg, [&](const std::array<std::size_t, kMaxRank>& c,
                                     std::size_t idx) {
    const T pred = predict_point(data, dims, ctx, c, idx, lp.kind, usable);
    const double q =
        std::abs(static_cast<double>(data[idx]) - static_cast<double>(pred)) /
        (2.0 * eb);
    bits += std::log2(2.0 * q + 1.0) + 1.0;
    ++count;
  });
  return count ? bits : 0.0;
}

template <class T>
double InterpEngine<T>::level_cost_sample(
    const T* data, const Dims& dims, int level, const LevelPlan& lp, double eb,
    std::size_t sample_step, const std::array<std::size_t, kMaxRank>* lo,
    const std::array<std::size_t, kMaxRank>* hi) {
  const std::size_t stride = std::size_t{1} << (level - 1);
  double bits = 0.0;
  for_each_stage(dims, stride, lp, level, [&](const StageCtx& ctx) {
    StageCtx sctx = ctx;
    if (lo && hi) {
      // Apply the same cross-block stencil guard the blocked encoder will
      // use, so the proxy cost includes the boundary-prediction penalty of
      // block independence.
      const std::size_t s2 = 2 * ctx.g.stride;
      const std::array<std::size_t, kMaxRank>* cur = nullptr;
      auto usable = [&](int axis, std::size_t y) -> bool {
        if (y >= (*lo)[axis] && y < (*hi)[axis]) return true;
        if (y < (*lo)[axis]) return true;
        if (y % s2 != 0) return false;
        for (int a = 0; a < dims.rank(); ++a)
          if (a != axis && (*cur)[a] % s2 != 0) return false;
        return true;
      };
      StageGrid sg = ctx.g;
      for (int a = 0; a < dims.rank(); ++a) sg.step[a] *= sample_step;
      double stage_bits = 0.0;
      for_each_stage_point_in_box(
          dims, sg, *lo, *hi,
          [&](const std::array<std::size_t, kMaxRank>& c, std::size_t idx) {
            cur = &c;
            const T pred =
                predict_point(data, dims, sctx, c, idx, lp.kind, usable);
            const double q = std::abs(static_cast<double>(data[idx]) -
                                      static_cast<double>(pred)) /
                             (2.0 * eb);
            stage_bits += std::log2(2.0 * q + 1.0) + 1.0;
          });
      bits += stage_bits;
    } else {
      bits += sample_stage_cost(data, dims, ctx.g, lp, eb, sample_step);
    }
  });
  return bits;
}

}  // namespace qip
