#include "compressors/zfp_like.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "compressors/core/driver.hpp"
#include "encode/bitstream.hpp"

namespace qip {
namespace {

constexpr int kEdge = 4;
constexpr std::uint64_t kNegaMask = 0xAAAAAAAAAAAAAAAAull;

/// Fixed-point fraction bits: enough precision that quantization noise
/// sits far below any realistic tolerance, with headroom for the x64
/// worst-case transform growth inside int64.
template <class T>
constexpr int fraction_bits();
template <>
constexpr int fraction_bits<float>() { return 30; }
template <>
constexpr int fraction_bits<double>() { return 48; }

/// Exactly invertible S-transform pair: s = floor((a+b)/2), d = a-b.
inline void s_fwd(std::int64_t& a, std::int64_t& b) {
  const std::int64_t s = (a + b) >> 1;
  const std::int64_t d = a - b;
  a = s;
  b = d;
}
inline void s_inv(std::int64_t& s, std::int64_t& d) {
  const std::int64_t a = s + ((d + 1) >> 1);
  const std::int64_t b = a - d;
  s = a;
  d = b;
}

/// Two-level S-transform of a 4-sample line (in place, given stride).
/// Output slots: 0 = coarse average, 1 = coarse detail, 2/3 = fine
/// details — mirroring a two-level Haar decomposition.
inline void line_fwd(std::int64_t* p, std::size_t s) {
  s_fwd(p[0], p[s]);          // (x0,x1) -> (s0,d0)
  s_fwd(p[2 * s], p[3 * s]);  // (x2,x3) -> (s1,d1)
  std::int64_t s0 = p[0], d0 = p[s], s1 = p[2 * s], d1 = p[3 * s];
  s_fwd(s0, s1);  // -> (ss, ds)
  p[0] = s0;
  p[s] = s1;      // ds in slot 1
  p[2 * s] = d0;
  p[3 * s] = d1;
}
inline void line_inv(std::int64_t* p, std::size_t s) {
  std::int64_t ss = p[0], ds = p[s], d0 = p[2 * s], d1 = p[3 * s];
  s_inv(ss, ds);  // -> (s0, s1)
  p[0] = ss;
  p[s] = d0;
  p[2 * s] = ds;
  p[3 * s] = d1;
  s_inv(p[0], p[s]);
  s_inv(p[2 * s], p[3 * s]);
}

inline std::uint64_t to_negabinary(std::int64_t i) {
  return (static_cast<std::uint64_t>(i) + kNegaMask) ^ kNegaMask;
}
inline std::int64_t from_negabinary(std::uint64_t u) {
  return static_cast<std::int64_t>((u ^ kNegaMask) - kNegaMask);
}

/// Per-rank coefficient permutation ordered by total decomposition
/// degree (coarse first), matching the embedded coder's assumption that
/// earlier coefficients are larger.
std::vector<int> degree_order(int rank) {
  const int n = 1;
  (void)n;
  const int size = 1 << (2 * rank);  // 4^rank
  auto slot_degree = [](int pos) { return pos == 0 ? 0 : (pos == 1 ? 1 : 2); };
  std::vector<int> order(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    int da = 0, db = 0, ta = a, tb = b;
    for (int d = 0; d < rank; ++d) {
      da += slot_degree(ta & 3);
      db += slot_degree(tb & 3);
      ta >>= 2;
      tb >>= 2;
    }
    return da != db ? da < db : a < b;
  });
  return order;
}

struct BlockCodec {
  int rank;
  int n;  // 4^rank
  std::vector<int> order;

  explicit BlockCodec(int r) : rank(r), n(1 << (2 * r)), order(degree_order(r)) {}

  void transform_fwd(std::int64_t* blk) const {
    for (int axis = rank - 1; axis >= 0; --axis) apply(blk, axis, true);
  }
  void transform_inv(std::int64_t* blk) const {
    for (int axis = 0; axis < rank; ++axis) apply(blk, axis, false);
  }

 private:
  void apply(std::int64_t* blk, int axis, bool fwd) const {
    // Lines along `axis`: iterate all positions with that axis pinned 0.
    const int stride = 1 << (2 * (rank - 1 - axis));
    const int lines = n / kEdge;
    for (int li = 0; li < lines; ++li) {
      // Expand line index into an offset skipping the target axis.
      int off = 0, rem = li;
      for (int d = rank - 1; d >= 0; --d) {
        if (d == axis) continue;
        const int coord = rem & 3;
        rem >>= 2;
        off += coord << (2 * (rank - 1 - d));
      }
      if (fwd)
        line_fwd(blk + off, static_cast<std::size_t>(stride));
      else
        line_inv(blk + off, static_cast<std::size_t>(stride));
    }
  }
};

int top_bit(std::uint64_t v) { return v ? 63 - std::countl_zero(v) : -1; }

/// Embedded group-tested bitplane encoder (ZFP-style): per plane, emit
/// the bits of the already-significant ordered prefix, then alternately
/// test the remainder ("any set bit here?") and scan forward to the next
/// set bit. The decoder mirrors the control flow exactly.
///
/// Fast path for n <= 64 (ranks 1-3): each plane is transposed once into
/// a 64-bit mask with ordered-coefficient i at bit (63 - i), so prefix
/// emission is one batched write and tail scans are countl_zero.
void encode_planes(BitWriter& bw, const std::uint64_t* c,
                   const std::vector<int>& order, int kmax, int kmin) {
  const int n = static_cast<int>(order.size());
  if (n <= 64) {
    int m = 0;
    for (int p = kmax; p >= kmin; --p) {
      std::uint64_t mask = 0;
      for (int i = 0; i < n; ++i)
        mask |= ((c[order[static_cast<std::size_t>(i)]] >> p) & 1)
                << (63 - i);
      if (m > 0) bw.write(mask >> (64 - m), m);
      int i = m;
      while (i < n) {
        // Next set bit at or after position i, if any.
        const std::uint64_t rest = mask << i;
        const int skip = rest ? std::countl_zero(rest) : 64;
        const bool any = i + skip < n;
        bw.write_bit(any);
        if (!any) break;
        // Emit `skip` zeros then the 1 that ends the scan.
        bw.write(1, skip + 1);
        i += skip + 1;
        m = i;
      }
    }
    return;
  }
  int m = 0;
  for (int p = kmax; p >= kmin; --p) {
    for (int i = 0; i < m; ++i)
      bw.write_bit((c[order[static_cast<std::size_t>(i)]] >> p) & 1);
    int i = m;
    while (i < n) {
      bool any = false;
      for (int j = i; j < n; ++j) {
        if ((c[order[static_cast<std::size_t>(j)]] >> p) & 1) {
          any = true;
          break;
        }
      }
      bw.write_bit(any);
      if (!any) break;
      for (;;) {
        const bool b = (c[order[static_cast<std::size_t>(i)]] >> p) & 1;
        bw.write_bit(b);
        ++i;
        if (b) break;
      }
      m = i;
    }
  }
}

void decode_planes(BitReader& br, std::uint64_t* c,
                   const std::vector<int>& order, int kmax, int kmin) {
  const int n = static_cast<int>(order.size());
  if (n <= 64) {
    int m = 0;
    for (int p = kmax; p >= kmin; --p) {
      if (m > 0) {
        std::uint64_t prefix = br.read(m);
        // Bit (m-1-i) of prefix is ordered coefficient i's plane bit.
        while (prefix) {
          const int bit = 63 - std::countl_zero(prefix);
          c[order[static_cast<std::size_t>(m - 1 - bit)]] |= 1ull << p;
          prefix &= ~(1ull << bit);
        }
      }
      int i = m;
      while (i < n) {
        if (!br.read_bit()) break;
        for (;;) {
          const bool b = br.read_bit() != 0;
          if (b) c[order[static_cast<std::size_t>(i)]] |= 1ull << p;
          ++i;
          if (b) break;
        }
        m = i;
      }
    }
    return;
  }
  int m = 0;
  for (int p = kmax; p >= kmin; --p) {
    for (int i = 0; i < m; ++i)
      if (br.read_bit()) c[order[static_cast<std::size_t>(i)]] |= 1ull << p;
    int i = m;
    while (i < n) {
      if (!br.read_bit()) break;
      for (;;) {
        const bool b = br.read_bit() != 0;
        if (b) c[order[static_cast<std::size_t>(i)]] |= 1ull << p;
        ++i;
        if (b) break;
      }
      m = i;
    }
  }
}

/// Tolerance-derived minimum plane for a block with exponent e.
template <class T>
int min_plane(double tol, int e, int guard_bits) {
  if (tol <= 0) return 0;
  const double tol_int = std::ldexp(tol, fraction_bits<T>() - 1 - e);
  if (tol_int < 1.0) return 0;
  const int mb = static_cast<int>(std::floor(std::log2(tol_int))) - guard_bits;
  return std::max(mb, 0);
}

template <class T, bool kEncode>
void walk_blocks(T* data, const Dims& dims, double tol, int guard_bits,
                 BitWriter* bw, BitReader* br) {
  const int rank = dims.rank();
  const BlockCodec codec(rank);
  const int Q = fraction_bits<T>();

  std::array<std::size_t, kMaxRank> nblk{1, 1, 1, 1};
  for (int a = 0; a < rank; ++a)
    nblk[a] = (dims.extent(a) + kEdge - 1) / kEdge;

  std::vector<std::int64_t> blk(static_cast<std::size_t>(codec.n));
  std::vector<std::uint64_t> nb(static_cast<std::size_t>(codec.n));

  std::array<std::size_t, kMaxRank> b{};
  for (b[0] = 0; b[0] < nblk[0]; ++b[0])
    for (b[1] = 0; b[1] < nblk[1]; ++b[1])
      for (b[2] = 0; b[2] < nblk[2]; ++b[2])
        for (b[3] = 0; b[3] < nblk[3]; ++b[3]) {
          // Gather with clamped padding / scatter valid region.
          auto for_each_cell = [&](auto&& fn) {
            std::array<std::size_t, kMaxRank> c{};
            const int e0 = rank > 0 ? kEdge : 1, e1 = rank > 1 ? kEdge : 1;
            const int e2 = rank > 2 ? kEdge : 1, e3 = rank > 3 ? kEdge : 1;
            for (int i0 = 0; i0 < e0; ++i0)
              for (int i1 = 0; i1 < e1; ++i1)
                for (int i2 = 0; i2 < e2; ++i2)
                  for (int i3 = 0; i3 < e3; ++i3) {
                    c = {b[0] * kEdge + static_cast<std::size_t>(i0),
                         b[1] * kEdge + static_cast<std::size_t>(i1),
                         b[2] * kEdge + static_cast<std::size_t>(i2),
                         b[3] * kEdge + static_cast<std::size_t>(i3)};
                    int blk_idx = 0;
                    const int loc[4] = {i0, i1, i2, i3};
                    for (int d = 0; d < rank; ++d)
                      blk_idx += loc[d] << (2 * (rank - 1 - d));
                    fn(c, blk_idx);
                  }
          };

          if constexpr (kEncode) {
            T maxv = 0;
            for_each_cell([&](std::array<std::size_t, kMaxRank> c, int bi) {
              std::array<std::size_t, kMaxRank> cc{};
              for (int d = 0; d < kMaxRank; ++d)
                cc[d] = std::min(c[d], dims.extent(d) - 1);
              const T v = data[dims.index(cc[0], cc[1], cc[2], cc[3])];
              blk[static_cast<std::size_t>(bi)] = 0;
              nb[static_cast<std::size_t>(bi)] = 0;
              maxv = std::max(maxv, static_cast<T>(std::abs(v)));
            });
            if (!(maxv > 0)) {
              bw->write_bit(true);  // all-zero block
              continue;
            }
            bw->write_bit(false);
            int e = 0;
            std::frexp(static_cast<double>(maxv), &e);  // maxv < 2^e
            bw->write(static_cast<std::uint64_t>(e + 1024) & 0xFFF, 12);

            // Power-of-two scaling is exact, so one precomputed multiply
            // replaces a per-point ldexp call.
            const double scale = std::ldexp(1.0, Q - 1 - e);
            for_each_cell([&](std::array<std::size_t, kMaxRank> c, int bi) {
              std::array<std::size_t, kMaxRank> cc{};
              for (int d = 0; d < kMaxRank; ++d)
                cc[d] = std::min(c[d], dims.extent(d) - 1);
              const double v =
                  static_cast<double>(data[dims.index(cc[0], cc[1], cc[2], cc[3])]);
              blk[static_cast<std::size_t>(bi)] = std::llround(v * scale);
            });
            codec.transform_fwd(blk.data());
            int kmax = 0;
            for (int i = 0; i < codec.n; ++i) {
              nb[static_cast<std::size_t>(i)] =
                  to_negabinary(blk[static_cast<std::size_t>(i)]);
              kmax = std::max(kmax, top_bit(nb[static_cast<std::size_t>(i)]));
            }
            bw->write(static_cast<std::uint64_t>(kmax), 6);
            const int kmin = min_plane<T>(tol, e, guard_bits);
            if (kmax >= kmin)
              encode_planes(*bw, nb.data(), codec.order, kmax, kmin);
          } else {
            if (br->read_bit()) {  // all-zero block
              for_each_cell([&](std::array<std::size_t, kMaxRank> c, int) {
                bool valid = true;
                for (int d = 0; d < kMaxRank; ++d)
                  if (c[d] >= dims.extent(d)) valid = false;
                if (valid)
                  data[dims.index(c[0], c[1], c[2], c[3])] = T{0};
              });
              continue;
            }
            const int e = static_cast<int>(br->read(12)) - 1024;
            const int kmax = static_cast<int>(br->read(6));
            const int kmin = min_plane<T>(tol, e, guard_bits);
            std::fill(nb.begin(), nb.end(), 0);
            if (kmax >= kmin)
              decode_planes(*br, nb.data(), codec.order, kmax, kmin);
            for (int i = 0; i < codec.n; ++i)
              blk[static_cast<std::size_t>(i)] =
                  from_negabinary(nb[static_cast<std::size_t>(i)]);
            codec.transform_inv(blk.data());
            const double inv_scale = std::ldexp(1.0, e + 1 - Q);
            for_each_cell([&](std::array<std::size_t, kMaxRank> c, int bi) {
              bool valid = true;
              for (int d = 0; d < kMaxRank; ++d)
                if (c[d] >= dims.extent(d)) valid = false;
              if (valid)
                data[dims.index(c[0], c[1], c[2], c[3])] = static_cast<T>(
                    static_cast<double>(blk[static_cast<std::size_t>(bi)]) *
                    inv_scale);
            });
          }
        }
}

/// Stage policy: embedded block-transform stream plus the exact-bound
/// correction list.
struct ZFPCodec {
  using Config = ZFPConfig;
  using Artifacts = NoArtifacts;
  static constexpr CompressorId kId = CompressorId::kZFP;
  static constexpr const char* kName = "zfp";

  template <class T>
  static void encode(const T* data, const Dims& dims, const Config& cfg,
                     ContainerWriter& out, Artifacts*) {
    BitWriter bw;
    walk_blocks<T, true>(const_cast<T*>(data), dims, cfg.error_bound,
                         cfg.guard_bits, &bw, nullptr);
    std::vector<std::uint8_t> stream = bw.finish();

    // Correction pass: decode our own stream and patch violations so the
    // absolute bound holds exactly.
    Field<T> recon(dims);
    {
      BitReader br(stream);
      walk_blocks<T, false>(recon.data(), dims, cfg.error_bound,
                            cfg.guard_bits, nullptr, &br);
    }
    const auto corrections = collect_corrections(
        data, dims.size(), cfg.error_bound, cfg.error_bound / 2.0,
        [&](std::size_t i) { return static_cast<double>(recon[i]); });

    ByteWriter& h = out.stage(StageId::kConfig);
    h.put(cfg.error_bound);
    h.put(static_cast<std::int32_t>(cfg.guard_bits));
    write_raw_chunk(out, stream);
    write_corrections_stage(out, corrections);
  }

  template <class T>
  static void decode(const ContainerReader& in, T* out, ThreadPool*) {
    ByteReader h = in.stage(StageId::kConfig);
    const double eb = h.get<double>();
    const int guard = h.get<std::int32_t>();

    const std::vector<std::uint8_t> stream = read_raw_chunk(in);
    BitReader br(stream);
    walk_blocks<T, false>(out, in.dims(), eb, guard, nullptr, &br);
    apply_corrections_stage(in, out, in.dims().size(), eb / 2.0, "zfp");
  }
};

}  // namespace

template <class T>
std::vector<std::uint8_t> zfp_compress(const T* data, const Dims& dims,
                                       const ZFPConfig& cfg) {
  return codec_seal<ZFPCodec>(data, dims, cfg);
}

template <class T>
Field<T> zfp_decompress(std::span<const std::uint8_t> archive,
                        ThreadPool* pool) {
  return codec_open<ZFPCodec, T>(archive, pool);
}

template <class T>
void zfp_decompress_into(std::span<const std::uint8_t> archive, T* out,
                         const Dims& expect, ThreadPool* pool) {
  codec_open_into<ZFPCodec, T>(archive, out, expect, pool);
}

template std::vector<std::uint8_t> zfp_compress<float>(const float*,
                                                       const Dims&,
                                                       const ZFPConfig&);
template std::vector<std::uint8_t> zfp_compress<double>(const double*,
                                                        const Dims&,
                                                        const ZFPConfig&);
template Field<float> zfp_decompress<float>(std::span<const std::uint8_t>,
                                            ThreadPool*);
template Field<double> zfp_decompress<double>(std::span<const std::uint8_t>,
                                              ThreadPool*);
template void zfp_decompress_into<float>(std::span<const std::uint8_t>, float*,
                                         const Dims&, ThreadPool*);
template void zfp_decompress_into<double>(std::span<const std::uint8_t>,
                                          double*, const Dims&, ThreadPool*);

}  // namespace qip
