#include "compressors/sz3.hpp"

#include <algorithm>
#include <cstring>

#include "compressors/core/driver.hpp"
#include "compressors/lorenzo_path.hpp"
#include "predict/multilevel.hpp"

namespace qip {
namespace {

/// Extract a centered sub-box (up to `edge` per axis) for predictor
/// selection sampling.
template <class T>
Field<T> sample_box(const T* data, const Dims& dims, std::size_t edge) {
  std::array<std::size_t, kMaxRank> ext{1, 1, 1, 1}, lo{0, 0, 0, 0};
  for (int a = 0; a < dims.rank(); ++a) {
    ext[a] = std::min(dims.extent(a), edge);
    lo[a] = (dims.extent(a) - ext[a]) / 2;
  }
  Dims sub = [&] {
    switch (dims.rank()) {
      case 1: return Dims{ext[0]};
      case 2: return Dims{ext[0], ext[1]};
      case 3: return Dims{ext[0], ext[1], ext[2]};
      default: return Dims{ext[0], ext[1], ext[2], ext[3]};
    }
  }();
  Field<T> out(sub);
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < ext[0]; ++c[0])
    for (c[1] = 0; c[1] < ext[1]; ++c[1])
      for (c[2] = 0; c[2] < ext[2]; ++c[2])
        for (c[3] = 0; c[3] < ext[3]; ++c[3])
          out[sub.index(c[0], c[1], c[2], c[3])] =
              data[dims.index(lo[0] + c[0], lo[1] + c[1], lo[2] + c[2],
                              lo[3] + c[3])];
  return out;
}

/// Estimated archive bits for a symbol stream + outliers.
template <class T>
double estimate_bits(const std::vector<std::uint32_t>& symbols,
                     std::size_t outliers) {
  return static_cast<double>(huffman_cost_bits(symbols)) +
         static_cast<double>(outliers) * sizeof(T) * 8.0;
}

/// Decide between interpolation and Lorenzo on a sampled sub-box,
/// mirroring SZ3's sampling-based predictor selection.
template <class T>
SZ3Predictor select_predictor(const T* data, const Dims& dims,
                              const SZ3Config& cfg, const InterpPlan& plan_tmpl) {
  if (!cfg.auto_fallback) return SZ3Predictor::kInterpolation;

  Field<T> box_i = sample_box(data, dims, 64);
  const Dims& sd = box_i.dims();
  Field<T> box_l = box_i.clone();

  LinearQuantizer<T> qi(cfg.error_bound, cfg.radius);
  InterpPlan plan = InterpPlan::uniform(
      interpolation_level_count(sd),
      plan_tmpl.levels.empty() ? LevelPlan{} : plan_tmpl.levels.front());
  const auto res = InterpEngine<T>::encode(box_i.data(), sd, plan,
                                           cfg.error_bound, qi, QPConfig{});
  const double bits_interp = estimate_bits<T>(res.symbols, qi.outlier_count());

  LinearQuantizer<T> ql(cfg.error_bound, cfg.radius);
  std::vector<std::uint32_t> lsym;
  lsym.reserve(sd.size());
  std::size_t cur = 0;
  lorenzo_walk<T, true>(box_l.data(), sd, ql, lsym, cur);
  const double bits_lorenzo = estimate_bits<T>(lsym, ql.outlier_count());

  // Mild hysteresis toward interpolation, SZ3's default path.
  return bits_lorenzo < 0.95 * bits_interp ? SZ3Predictor::kLorenzo
                                           : SZ3Predictor::kInterpolation;
}

/// Stage policy: interpolation with a sampled Lorenzo fallback. The
/// kConfig stage carries the committed predictor after the common prefix,
/// and the interpolation plan only when that predictor is interpolation.
struct SZ3Codec {
  using Config = SZ3Config;
  using Artifacts = SZ3Artifacts;
  static constexpr CompressorId kId = CompressorId::kSZ3;
  static constexpr const char* kName = "sz3";

  template <class T>
  static void encode(const T* data, const Dims& dims, const Config& cfg,
                     ContainerWriter& out, Artifacts* artifacts) {
    LevelPlan lp;
    lp.kind = cfg.kind;
    InterpPlan plan = InterpPlan::uniform(interpolation_level_count(dims), lp);

    const SZ3Predictor predictor = select_predictor(data, dims, cfg, plan);

    LinearQuantizer<T> quant(cfg.error_bound, cfg.radius);
    std::vector<std::uint32_t> symbols;
    std::vector<SymbolSpan> spans;
    TileLayout tiles;

    if (predictor == SZ3Predictor::kInterpolation) {
      tiles = interp_tile_layout(cfg.tile_size, dims, plan);
      IndexArtifacts ia;
      InterpEncoding<T> enc = interp_encode(
          data, dims, plan, cfg.error_bound, cfg.radius, cfg.qp,
          artifacts ? &ia : nullptr, tiles.active() ? &tiles : nullptr,
          &spans, cfg.pool);
      symbols = std::move(enc.symbols);
      quant = std::move(enc.quant);
      if (artifacts) {
        artifacts->codes = std::move(ia.codes);
        artifacts->symbols_spatial = std::move(ia.symbols_spatial);
      }
    } else {
      Field<T> work(dims, std::vector<T>(data, data + dims.size()));
      symbols.reserve(dims.size());
      std::size_t cur = 0;
      lorenzo_walk<T, true>(work.data(), dims, quant, symbols, cur);
      // The Lorenzo scan is a single sequential sweep: one whole-domain
      // level-1 chunk (no progressive refinement to expose).
      spans.push_back(
          {1, kWholeDomainTile, 0, symbols.size(), 0, quant.outlier_count()});
      if (artifacts) {
        artifacts->codes.clear();
        artifacts->symbols_spatial.clear();
      }
    }
    if (artifacts) artifacts->predictor = predictor;

    ByteWriter& h = out.stage(StageId::kConfig);
    save_interp_common(h, cfg.error_bound, cfg.radius, cfg.qp);
    h.put(static_cast<std::uint8_t>(predictor));
    if (predictor == SZ3Predictor::kInterpolation) plan.save(h);
    quant.save(h);
    out.set_tiling(tiles);
    write_symbol_chunks(out, symbols, spans, cfg.pool);
  }

  /// Parsed SZ3 kConfig stage (common | predictor | [plan] | quantizer).
  template <class T>
  struct LoadedConfig {
    InterpCommon c;
    SZ3Predictor predictor{};
    InterpPlan plan;
    LinearQuantizer<T> quant{1.0};
  };

  template <class T>
  static LoadedConfig<T> load_config(const ContainerReader& in) {
    ByteReader h = in.stage(StageId::kConfig);
    LoadedConfig<T> lc;
    lc.c = load_interp_common(h);
    lc.predictor = static_cast<SZ3Predictor>(h.get<std::uint8_t>());
    if (lc.predictor == SZ3Predictor::kInterpolation)
      lc.plan = InterpPlan::load(h);
    lc.quant.set_error_bound(lc.c.error_bound);
    lc.quant.load(h);
    return lc;
  }

  template <class T>
  static void decode(const ContainerReader& in, T* out, ThreadPool* pool) {
    LoadedConfig<T> lc = load_config<T>(in);
    std::vector<std::uint32_t> symbols = read_symbols_stage(in, pool);

    if (lc.predictor == SZ3Predictor::kInterpolation) {
      InterpEngine<T>::decode(symbols, in.dims(), lc.plan, lc.c.error_bound,
                              lc.quant, lc.c.qp, out, archive_tiles(in),
                              /*stop_level=*/1, pool);
    } else {
      std::size_t cur = 0;
      lorenzo_walk<T, false>(out, in.dims(), lc.quant, symbols, cur);
    }
  }

  template <class T>
  static Field<T> decode_preview(const ContainerReader& in, int level,
                                 ThreadPool* pool, PartialDecodeStats* stats) {
    LoadedConfig<T> lc = load_config<T>(in);
    if (lc.predictor == SZ3Predictor::kInterpolation)
      return interp_preview_core(in, level, pool, stats, lc.plan, lc.c,
                                 lc.quant);
    // The Lorenzo scan has no level structure: level 1 is simply the
    // full decode, anything coarser does not exist in the stream.
    if (level != 1)
      throw DecodeError("sz3: lorenzo archives only support level-1 preview");
    Field<T> out(in.dims());
    decode<T>(in, out.data(), pool);
    if (stats) {
      stats->payload_bytes_read =
          in.version() == 2 ? in.stage_bytes(StageId::kSymbols).size()
                            : in.payload_bytes_read();
      stats->payload_bytes_total =
          in.version() == 2 ? in.stage_bytes(StageId::kSymbols).size()
                            : in.payload_bytes_declared();
    }
    return out;
  }

  template <class T>
  static Field<T> decode_region(const ContainerReader& in, const Box& box,
                                ThreadPool* pool, PartialDecodeStats* stats) {
    LoadedConfig<T> lc = load_config<T>(in);
    if (lc.predictor != SZ3Predictor::kInterpolation)
      throw DecodeError(
          "sz3: lorenzo archives have no tile directory; region decode "
          "requires the interpolation path with a tile size");
    return interp_region_core(in, box, pool, stats, lc.plan, lc.c, lc.quant);
  }
};

}  // namespace

template <class T>
std::vector<std::uint8_t> sz3_compress(const T* data, const Dims& dims,
                                       const SZ3Config& cfg,
                                       SZ3Artifacts* artifacts) {
  return codec_seal<SZ3Codec>(data, dims, cfg, artifacts);
}

template <class T>
Field<T> sz3_decompress(std::span<const std::uint8_t> archive,
                        ThreadPool* pool) {
  return codec_open<SZ3Codec, T>(archive, pool);
}

template <class T>
void sz3_decompress_into(std::span<const std::uint8_t> archive, T* out,
                         const Dims& expect, ThreadPool* pool) {
  codec_open_into<SZ3Codec, T>(archive, out, expect, pool);
}

template <class T>
Field<T> sz3_decompress_preview(std::span<const std::uint8_t> archive,
                                int level, ThreadPool* pool,
                                PartialDecodeStats* stats) {
  return codec_open_preview<SZ3Codec, T>(archive, level, pool, stats);
}

template <class T>
Field<T> sz3_decompress_region(std::span<const std::uint8_t> archive,
                               const Box& box, ThreadPool* pool,
                               PartialDecodeStats* stats) {
  return codec_open_region<SZ3Codec, T>(archive, box, pool, stats);
}

template std::vector<std::uint8_t> sz3_compress<float>(const float*, const Dims&,
                                                       const SZ3Config&,
                                                       SZ3Artifacts*);
template std::vector<std::uint8_t> sz3_compress<double>(const double*,
                                                        const Dims&,
                                                        const SZ3Config&,
                                                        SZ3Artifacts*);
template Field<float> sz3_decompress<float>(std::span<const std::uint8_t>,
                                            ThreadPool*);
template Field<double> sz3_decompress<double>(std::span<const std::uint8_t>,
                                              ThreadPool*);
template void sz3_decompress_into<float>(std::span<const std::uint8_t>, float*,
                                         const Dims&, ThreadPool*);
template void sz3_decompress_into<double>(std::span<const std::uint8_t>,
                                          double*, const Dims&, ThreadPool*);
template Field<float> sz3_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
template Field<double> sz3_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
template Field<float> sz3_decompress_region<float>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);
template Field<double> sz3_decompress_region<double>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);

}  // namespace qip
