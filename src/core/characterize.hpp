#pragma once

// Quantization-index characterization tools (paper Sec. IV-B): per-slice
// and per-region Shannon entropy of the quantization index array at
// stage-dependent strides, plus clustering statistics. These drive the
// Fig. 3/4/5 reproduction benches.

#include <cstdint>
#include <span>
#include <vector>

#include "util/dims.hpp"

namespace qip {

/// Entropy (bits/symbol) of the quantization indices of each slice
/// perpendicular to `fixed_axis`, subsampled with `stride` along the two
/// in-plane axes (the paper's Fig. 4 uses stride 2 to isolate the last
/// interpolation level). Requires rank-3 dims.
std::vector<double> slice_entropies(std::span<const std::uint32_t> codes,
                                    const Dims& dims, int fixed_axis,
                                    std::size_t stride);

/// Entropy of a rectangular region of one slice: `fixed_axis` pinned at
/// `slice`, in-plane box [lo0,hi0) x [lo1,hi1) over the two remaining
/// axes in ascending order, subsampled by (stride0, stride1) — the
/// paper's Fig. 3/5 "regional entropy" with stage strides 2x2 / 1x2 /
/// 1x1.
double region_entropy(std::span<const std::uint32_t> codes, const Dims& dims,
                      int fixed_axis, std::size_t slice, std::size_t lo0,
                      std::size_t hi0, std::size_t lo1, std::size_t hi1,
                      std::size_t stride0, std::size_t stride1);

/// Clustering statistics of an index array: how predictable the indices
/// are from their in-plane neighbors. `mean_abs_residual` is the mean
/// |q - lorenzo2(q)| over the subsampled plane grid; low values mean the
/// clustering QP exploits is present.
struct ClusterStats {
  double entropy = 0.0;            ///< plain symbol entropy
  double residual_entropy = 0.0;   ///< entropy after 2-D Lorenzo residual
  double mean_abs_residual = 0.0;
  double same_sign_fraction = 0.0; ///< fraction of neighbor pairs with equal
                                   ///< nonzero sign (Case III gate hit rate)
};

ClusterStats cluster_stats(std::span<const std::uint32_t> codes,
                           const Dims& dims, int fixed_axis, std::size_t slice,
                           std::size_t stride0, std::size_t stride1,
                           std::int32_t radius = 32768);

}  // namespace qip
