#include "core/characterize.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "util/stats.hpp"

namespace qip {
namespace {

/// The two in-plane axes (ascending) for a pinned axis of a rank-3 field.
std::array<int, 2> plane_axes(int fixed_axis) {
  switch (fixed_axis) {
    case 0: return {1, 2};
    case 1: return {0, 2};
    default: return {0, 1};
  }
}

/// Gather the subsampled in-plane symbols of one slice region.
std::vector<std::uint32_t> gather_plane(std::span<const std::uint32_t> codes,
                                        const Dims& dims, int fixed_axis,
                                        std::size_t slice, std::size_t lo0,
                                        std::size_t hi0, std::size_t lo1,
                                        std::size_t hi1, std::size_t stride0,
                                        std::size_t stride1) {
  const auto [a0, a1] = plane_axes(fixed_axis);
  std::vector<std::uint32_t> out;
  out.reserve(((hi0 - lo0) / stride0 + 1) * ((hi1 - lo1) / stride1 + 1));
  std::array<std::size_t, kMaxRank> c{0, 0, 0, 0};
  c[fixed_axis] = slice;
  for (std::size_t i = lo0; i < hi0; i += stride0) {
    c[a0] = i;
    for (std::size_t j = lo1; j < hi1; j += stride1) {
      c[a1] = j;
      out.push_back(codes[dims.index(c[0], c[1], c[2], c[3])]);
    }
  }
  return out;
}

}  // namespace

std::vector<double> slice_entropies(std::span<const std::uint32_t> codes,
                                    const Dims& dims, int fixed_axis,
                                    std::size_t stride) {
  assert(dims.rank() == 3);
  const auto [a0, a1] = plane_axes(fixed_axis);
  std::vector<double> out(dims.extent(fixed_axis));
  for (std::size_t s = 0; s < dims.extent(fixed_axis); ++s) {
    const auto plane = gather_plane(codes, dims, fixed_axis, s, 0,
                                    dims.extent(a0), 0, dims.extent(a1),
                                    stride, stride);
    out[s] = shannon_entropy(std::span<const std::uint32_t>(plane));
  }
  return out;
}

double region_entropy(std::span<const std::uint32_t> codes, const Dims& dims,
                      int fixed_axis, std::size_t slice, std::size_t lo0,
                      std::size_t hi0, std::size_t lo1, std::size_t hi1,
                      std::size_t stride0, std::size_t stride1) {
  const auto plane = gather_plane(codes, dims, fixed_axis, slice, lo0, hi0,
                                  lo1, hi1, stride0, stride1);
  return shannon_entropy(std::span<const std::uint32_t>(plane));
}

ClusterStats cluster_stats(std::span<const std::uint32_t> codes,
                           const Dims& dims, int fixed_axis, std::size_t slice,
                           std::size_t stride0, std::size_t stride1,
                           std::int32_t radius) {
  const auto [a0, a1] = plane_axes(fixed_axis);
  const std::size_t n0 = dims.extent(a0) / stride0;
  const std::size_t n1 = dims.extent(a1) / stride1;
  const auto plane = gather_plane(codes, dims, fixed_axis, slice, 0,
                                  n0 * stride0, 0, n1 * stride1, stride0,
                                  stride1);
  ClusterStats st;
  st.entropy = shannon_entropy(std::span<const std::uint32_t>(plane));

  auto q = [&](std::size_t i, std::size_t j) -> std::int64_t {
    return static_cast<std::int64_t>(plane[i * n1 + j]) - radius;
  };
  std::vector<std::uint32_t> residual;
  residual.reserve(plane.size());
  double abs_sum = 0.0;
  std::size_t same_sign = 0, pairs = 0;
  for (std::size_t i = 1; i < n0; ++i) {
    for (std::size_t j = 1; j < n1; ++j) {
      const std::int64_t r =
          q(i, j) - (q(i - 1, j) + q(i, j - 1) - q(i - 1, j - 1));
      residual.push_back(static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(r) << 1) ^
          static_cast<std::uint64_t>(r >> 63)));
      abs_sum += static_cast<double>(std::llabs(r));
      ++pairs;
      const std::int64_t a = q(i - 1, j), b = q(i, j - 1);
      if ((a > 0 && b > 0) || (a < 0 && b < 0)) ++same_sign;
    }
  }
  if (!residual.empty()) {
    st.residual_entropy =
        shannon_entropy(std::span<const std::uint32_t>(residual));
    st.mean_abs_residual = abs_sum / static_cast<double>(pairs);
    st.same_sign_fraction =
        static_cast<double>(same_sign) / static_cast<double>(pairs);
  }
  return st;
}

}  // namespace qip
