#pragma once

// Adaptive Quantization Index Prediction (QP) — the paper's contribution
// (Sec. V). Interpolation-based compressors leave exploitable spatial
// correlation in their quantization index array Q; QP applies a reversible
// integer prediction f so that the entropy coder sees Q' = Q - pred(Q)
// instead, lowering entropy (and thus raising the compression ratio)
// without changing the decompressed data at all.
//
// The module mirrors paper Algorithms 1 and 2:
//  * prediction runs inline with the level-wise interpolation traversal,
//    using only already-processed indices (decoder-available information);
//  * the predictor is a Lorenzo stencil on the *stage grid* — the set of
//    points produced by one (level, direction) interpolation stage, whose
//    orthogonal spacing is the paper's observed 2x2 / 1x2 / 1x1 clustering
//    stride;
//  * prediction is gated adaptively (Cases I-IV) on the unpredictable
//    label and on neighbor signs, and restricted to the finest levels.
//
// Best-fit configuration from the paper's exploration: 2-D Lorenzo,
// Case III, levels 1-2. That is QPConfig's default.

#include <cstdint>
#include <string>

#include "quant/quantizer.hpp"
#include "util/bytes.hpp"

namespace qip {

/// Prediction stencil dimensionality (paper Fig. 7).
enum class QPDimension : std::uint8_t {
  kNone = 0,   ///< QP disabled for this point class
  k1DBack = 1, ///< previous index along the interpolation direction
  k1DTop = 2,  ///< previous index along the slower orthogonal axis
  k1DLeft = 3, ///< previous index along the faster orthogonal axis
  k2D = 4,     ///< 2-D Lorenzo in the orthogonal plane (best fit)
  k3D = 5,     ///< 3-D Lorenzo on the full stage grid
};

/// Adaptive gating condition (paper Fig. 8 / Sec. V-C2).
enum class QPCondition : std::uint8_t {
  kCaseI = 0,   ///< predict everywhere
  kCaseII = 1,  ///< skip when any involved neighbor is unpredictable
  kCaseIII = 2, ///< Case II + left/top neighbors share a nonzero sign
  kCaseIV = 3,  ///< Case II + all involved neighbors share a nonzero sign
};

/// Full QP configuration carried in the archive header.
struct QPConfig {
  bool enabled = false;
  QPDimension dimension = QPDimension::k2D;
  QPCondition condition = QPCondition::kCaseIII;
  int max_level = 2;  ///< apply on interpolation levels 1..max_level

  /// Convenience: the paper's best-fit configuration, enabled.
  static QPConfig best_fit() {
    QPConfig c;
    c.enabled = true;
    return c;
  }

  void save(ByteWriter& w) const;
  static QPConfig load(ByteReader& r);
  std::string str() const;
};

/// Per-point neighborhood of a stage-grid point: linear offsets of the
/// previous same-stage points along the interpolation ("back") axis and
/// the two fastest orthogonal axes ("left" = fastest). An unavailable
/// neighbor (stage-grid boundary, block boundary, or rank too small) has
/// avail_* == false.
struct QPNeighborhood {
  std::size_t back = 0, left = 0, top = 0;
  bool avail_back = false, avail_left = false, avail_top = false;
};

namespace detail {

inline std::int64_t signed_q(std::uint32_t code, std::int32_t radius) {
  return static_cast<std::int64_t>(code) - radius;
}

inline bool same_nonzero_sign(std::int64_t a, std::int64_t b) {
  return (a > 0 && b > 0) || (a < 0 && b < 0);
}

}  // namespace detail

/// 2-D Lorenzo arm of qp_compensation with both orthogonal neighbors
/// available: the Case I-IV gate plus the ql + qt - qd stencil on the
/// three neighbor codes. Factored out so the per-point path below, the
/// batch references in qp.cpp and the scalar lanes of the SIMD kernels
/// share one definition.
inline std::int64_t qp2d_compensation(std::uint32_t cl, std::uint32_t ct,
                                      std::uint32_t cd, QPCondition cond,
                                      std::int32_t radius) {
  using detail::same_nonzero_sign;
  using detail::signed_q;
  if (cond != QPCondition::kCaseI &&
      (cl == kUnpredictableCode || ct == kUnpredictableCode ||
       cd == kUnpredictableCode))
    return 0;
  const std::int64_t ql = signed_q(cl, radius);
  const std::int64_t qt = signed_q(ct, radius);
  const std::int64_t qd = signed_q(cd, radius);
  if (cond == QPCondition::kCaseIII && !same_nonzero_sign(ql, qt)) return 0;
  if (cond == QPCondition::kCaseIV &&
      !(same_nonzero_sign(ql, qt) && same_nonzero_sign(ql, qd)))
    return 0;
  return ql + qt - qd;
}

/// Compute the compensation factor c for the point at linear index `idx`
/// (paper Algorithm 2, generalized over dimension/condition choices).
/// `codes` is the spatial array of stored quantization codes
/// (q + radius; kUnpredictableCode for outliers), valid at all processed
/// positions. Returns 0 whenever the gate rejects.
inline std::int64_t qp_compensation(const std::uint32_t* codes,
                                    std::size_t idx,
                                    const QPNeighborhood& nb,
                                    const QPConfig& cfg, int level,
                                    std::int32_t radius) {
  if (!cfg.enabled || level > cfg.max_level ||
      cfg.dimension == QPDimension::kNone)
    return 0;

  using detail::same_nonzero_sign;
  using detail::signed_q;
  const bool check_u = cfg.condition != QPCondition::kCaseI;

  switch (cfg.dimension) {
    case QPDimension::k1DBack:
    case QPDimension::k1DTop:
    case QPDimension::k1DLeft: {
      std::size_t off = 0;
      bool avail = false;
      if (cfg.dimension == QPDimension::k1DBack) {
        off = nb.back;
        avail = nb.avail_back;
      } else if (cfg.dimension == QPDimension::k1DTop) {
        off = nb.top;
        avail = nb.avail_top;
      } else {
        off = nb.left;
        avail = nb.avail_left;
      }
      if (!avail) return 0;
      const std::uint32_t c = codes[idx - off];
      if (check_u && c == kUnpredictableCode) return 0;
      const std::int64_t q = signed_q(c, radius);
      if ((cfg.condition == QPCondition::kCaseIII ||
           cfg.condition == QPCondition::kCaseIV) &&
          q == 0)
        return 0;
      return q;
    }

    case QPDimension::k2D: {
      if (!nb.avail_left || !nb.avail_top) return 0;
      return qp2d_compensation(codes[idx - nb.left], codes[idx - nb.top],
                               codes[idx - nb.left - nb.top], cfg.condition,
                               radius);
    }

    case QPDimension::k3D: {
      if (!nb.avail_left || !nb.avail_top || !nb.avail_back) return 0;
      const std::size_t ol = nb.left, ot = nb.top, ob = nb.back;
      const std::uint32_t c[7] = {
          codes[idx - ol],           codes[idx - ot],
          codes[idx - ob],           codes[idx - ol - ot],
          codes[idx - ol - ob],      codes[idx - ot - ob],
          codes[idx - ol - ot - ob],
      };
      if (check_u) {
        for (std::uint32_t ci : c)
          if (ci == kUnpredictableCode) return 0;
      }
      std::int64_t q[7];
      for (int i = 0; i < 7; ++i) q[i] = signed_q(c[i], radius);
      if (cfg.condition == QPCondition::kCaseIII &&
          !same_nonzero_sign(q[0], q[1]))
        return 0;
      if (cfg.condition == QPCondition::kCaseIV) {
        bool all_pos = true, all_neg = true;
        for (int i = 0; i < 7; ++i) {
          all_pos = all_pos && q[i] > 0;
          all_neg = all_neg && q[i] < 0;
        }
        if (!all_pos && !all_neg) return 0;
      }
      return q[0] + q[1] + q[2] - q[3] - q[4] - q[5] + q[6];
    }

    case QPDimension::kNone:
      break;
  }
  return 0;
}

/// Map a stored quantization code plus compensation to the symbol that is
/// entropy-coded (paper Algorithm 1 line 7, adapted to a zigzag alphabet):
/// symbol 0 is reserved for the unpredictable label; predictable points
/// encode zigzag(q - c) + 1. With c == 0 this is frequency-equivalent to
/// SZ3's shifted-code alphabet, so disabling QP reproduces the base
/// compressor exactly.
[[nodiscard]] inline std::uint32_t qp_encode_symbol(std::uint32_t code, std::int64_t c,
                                      std::int32_t radius) {
  if (code == kUnpredictableCode) return 0;
  const std::int64_t q = detail::signed_q(code, radius);
  const std::int64_t r = q - c;
  const std::uint64_t zz = (static_cast<std::uint64_t>(r) << 1) ^
                           static_cast<std::uint64_t>(r >> 63);
  return static_cast<std::uint32_t>(zz) + 1;
}

/// Inverse of qp_encode_symbol(): recover the stored code from the symbol
/// and the (decoder-recomputed) compensation.
[[nodiscard]] inline std::uint32_t qp_decode_symbol(std::uint32_t symbol, std::int64_t c,
                                      std::int32_t radius) {
  if (symbol == 0) return kUnpredictableCode;
  const std::uint64_t zz = symbol - 1;
  const std::int64_t r =
      static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  const std::int64_t q = r + c;
  return static_cast<std::uint32_t>(q + radius);
}

/// Batch reference forms of the 2-D stage-grid Lorenzo QP transform and
/// its inverse, over contiguous neighbor-code rows (qp.cpp). `comp`
/// carries the low 32 bits of the exact 64-bit compensation; that is
/// lossless for every encoder-produced code (|comp| < 2^24 at the
/// default radius) and, on the decode side, qp_decode_symbol's final
/// truncation to u32 only ever consumes the compensation modulo 2^32.
/// These loops are the scalar ground truth the SIMD kernels (and their
/// benches/tests) are compared against.
void qp2d_comp_batch(const std::uint32_t* left, const std::uint32_t* top,
                     const std::uint32_t* diag, std::size_t n,
                     QPCondition cond, std::int32_t radius,
                     std::int32_t* comp);
void qp2d_forward_batch(const std::uint32_t* codes, const std::int32_t* comp,
                        std::size_t n, std::int32_t radius,
                        std::uint32_t* syms);
void qp2d_inverse_batch(const std::uint32_t* syms, const std::int32_t* comp,
                        std::size_t n, std::int32_t radius,
                        std::uint32_t* codes);

const char* to_string(QPDimension d);
const char* to_string(QPCondition c);

/// Introspection output offered by the four base compressors for the
/// characterization experiments: the spatial quantization index array Q
/// (stored codes) and the spatially-arranged encoded symbols Q'
/// (compensated when QP is enabled).
struct IndexArtifacts {
  std::vector<std::uint32_t> codes;
  std::vector<std::uint32_t> symbols_spatial;
};

}  // namespace qip
