#include "core/qp.hpp"

namespace qip {

void QPConfig::save(ByteWriter& w) const {
  w.put<std::uint8_t>(enabled ? 1 : 0);
  w.put(static_cast<std::uint8_t>(dimension));
  w.put(static_cast<std::uint8_t>(condition));
  w.put(static_cast<std::int32_t>(max_level));
}

QPConfig QPConfig::load(ByteReader& r) {
  QPConfig c;
  c.enabled = r.get<std::uint8_t>() != 0;
  c.dimension = static_cast<QPDimension>(r.get<std::uint8_t>());
  c.condition = static_cast<QPCondition>(r.get<std::uint8_t>());
  c.max_level = r.get<std::int32_t>();
  return c;
}

std::string QPConfig::str() const {
  if (!enabled) return "QP(off)";
  std::string s = "QP(";
  s += to_string(dimension);
  s += ", ";
  s += to_string(condition);
  s += ", levels<=" + std::to_string(max_level) + ")";
  return s;
}

void qp2d_comp_batch(const std::uint32_t* left, const std::uint32_t* top,
                     const std::uint32_t* diag, std::size_t n,
                     QPCondition cond, std::int32_t radius,
                     std::int32_t* comp) {
  for (std::size_t i = 0; i < n; ++i) {
    comp[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(
        qp2d_compensation(left[i], top[i], diag[i], cond, radius)));
  }
}

void qp2d_forward_batch(const std::uint32_t* codes, const std::int32_t* comp,
                        std::size_t n, std::int32_t radius,
                        std::uint32_t* syms) {
  for (std::size_t i = 0; i < n; ++i)
    syms[i] = qp_encode_symbol(codes[i], comp[i], radius);
}

void qp2d_inverse_batch(const std::uint32_t* syms, const std::int32_t* comp,
                        std::size_t n, std::int32_t radius,
                        std::uint32_t* codes) {
  for (std::size_t i = 0; i < n; ++i)
    codes[i] = qp_decode_symbol(syms[i], comp[i], radius);
}

const char* to_string(QPDimension d) {
  switch (d) {
    case QPDimension::kNone: return "none";
    case QPDimension::k1DBack: return "1D-Back";
    case QPDimension::k1DTop: return "1D-Top";
    case QPDimension::k1DLeft: return "1D-Left";
    case QPDimension::k2D: return "2D";
    case QPDimension::k3D: return "3D";
  }
  return "?";
}

const char* to_string(QPCondition c) {
  switch (c) {
    case QPCondition::kCaseI: return "Case I";
    case QPCondition::kCaseII: return "Case II";
    case QPCondition::kCaseIII: return "Case III";
    case QPCondition::kCaseIV: return "Case IV";
  }
  return "?";
}

}  // namespace qip
