#include "core/qp.hpp"

namespace qip {

void QPConfig::save(ByteWriter& w) const {
  w.put<std::uint8_t>(enabled ? 1 : 0);
  w.put(static_cast<std::uint8_t>(dimension));
  w.put(static_cast<std::uint8_t>(condition));
  w.put(static_cast<std::int32_t>(max_level));
}

QPConfig QPConfig::load(ByteReader& r) {
  QPConfig c;
  c.enabled = r.get<std::uint8_t>() != 0;
  c.dimension = static_cast<QPDimension>(r.get<std::uint8_t>());
  c.condition = static_cast<QPCondition>(r.get<std::uint8_t>());
  c.max_level = r.get<std::int32_t>();
  return c;
}

std::string QPConfig::str() const {
  if (!enabled) return "QP(off)";
  std::string s = "QP(";
  s += to_string(dimension);
  s += ", ";
  s += to_string(condition);
  s += ", levels<=" + std::to_string(max_level) + ")";
  return s;
}

const char* to_string(QPDimension d) {
  switch (d) {
    case QPDimension::kNone: return "none";
    case QPDimension::k1DBack: return "1D-Back";
    case QPDimension::k1DTop: return "1D-Top";
    case QPDimension::k1DLeft: return "1D-Left";
    case QPDimension::k2D: return "2D";
    case QPDimension::k3D: return "3D";
  }
  return "?";
}

const char* to_string(QPCondition c) {
  switch (c) {
    case QPCondition::kCaseI: return "Case I";
    case QPCondition::kCaseII: return "Case II";
    case QPCondition::kCaseIII: return "Case III";
    case QPCondition::kCaseIV: return "Case IV";
  }
  return "?";
}

}  // namespace qip
