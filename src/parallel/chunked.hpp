#pragma once

// Chunked parallel (de)compression.
//
// Splits a field into contiguous slabs along axis 0, compresses each
// slab independently with any registered compressor on a thread pool,
// and frames the results into one self-describing archive. This is the
// shared-memory analog of the paper's embarrassingly-parallel transfer
// setup (Sec. VI-E) and the standard way to push the single-threaded
// compressors to full-node throughput. Slab independence costs a little
// ratio (no cross-slab prediction) and buys linear scaling plus
// random-access decompression per slab.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compressors/registry.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

struct ChunkedOptions {
  std::string compressor = "SZ3";
  GenericOptions options;  ///< error bound + QP config per chunk
  /// Target slab thickness along axis 0; 0 = auto (aims for ~2 slabs per
  /// worker, at least 8 planes each).
  std::size_t slab = 0;
  unsigned workers = 0;  ///< 0 = hardware concurrency
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> chunked_compress(
    const T* data, const Dims& dims, const ChunkedOptions& opt);

/// Throws DecodeError on malformed archives (bad magic/dtype, inconsistent
/// chunk geometry, truncated blocks).
template <class T>
[[nodiscard]] Field<T> chunked_decompress(std::span<const std::uint8_t> archive,
                                          unsigned workers = 0);

extern template std::vector<std::uint8_t> chunked_compress<float>(
    const float*, const Dims&, const ChunkedOptions&);
extern template std::vector<std::uint8_t> chunked_compress<double>(
    const double*, const Dims&, const ChunkedOptions&);
extern template Field<float> chunked_decompress<float>(
    std::span<const std::uint8_t>, unsigned);
extern template Field<double> chunked_decompress<double>(
    std::span<const std::uint8_t>, unsigned);

}  // namespace qip
