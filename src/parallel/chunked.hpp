#pragma once

// Chunked parallel (de)compression.
//
// Splits a field into contiguous slabs along axis 0, compresses each
// slab independently with any registered compressor on a thread pool,
// and frames the results into one self-describing archive. This is the
// shared-memory analog of the paper's embarrassingly-parallel transfer
// setup (Sec. VI-E) and the standard way to push the single-threaded
// compressors to full-node throughput. Slab independence costs a little
// ratio (no cross-slab prediction) and buys linear scaling plus
// random-access decompression per slab.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compressors/registry.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

struct ChunkedOptions {
  std::string compressor = "SZ3";
  GenericOptions options;  ///< error bound + QP config per chunk
  /// Target slab thickness along axis 0; 0 = auto. The auto choice is a
  /// pure function of the field shape (fixed chunk-count target), never
  /// of the worker count, so the archive bytes are identical no matter
  /// how many threads produced them.
  std::size_t slab = 0;
  /// Worker count when the shared pool in `options.pool` is not set;
  /// 0 = hardware concurrency. Ignored when `options.pool` is provided —
  /// that pool is reused for slab-level and intra-field parallelism.
  unsigned workers = 0;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> chunked_compress(
    const T* data, const Dims& dims, const ChunkedOptions& opt);

/// Throws DecodeError on malformed archives (bad magic/dtype, inconsistent
/// chunk geometry, truncated blocks). Each slab is decoded straight into
/// its final position in the output field (no per-slab temporary + copy).
/// Pass `pool` to reuse a shared worker pool; otherwise a local pool with
/// `workers` threads (0 = hardware concurrency) is spun up.
template <class T>
[[nodiscard]] Field<T> chunked_decompress(std::span<const std::uint8_t> archive,
                                          unsigned workers = 0,
                                          ThreadPool* pool = nullptr);

extern template std::vector<std::uint8_t> chunked_compress<float>(
    const float*, const Dims&, const ChunkedOptions&);
extern template std::vector<std::uint8_t> chunked_compress<double>(
    const double*, const Dims&, const ChunkedOptions&);
extern template Field<float> chunked_decompress<float>(
    std::span<const std::uint8_t>, unsigned, ThreadPool*);
extern template Field<double> chunked_decompress<double>(
    std::span<const std::uint8_t>, unsigned, ThreadPool*);

}  // namespace qip
