#include "parallel/chunked.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <thread>

#include "compressors/core/container.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

Dims slab_dims(const Dims& d, std::size_t thickness) {
  switch (d.rank()) {
    case 1: return Dims{thickness};
    case 2: return Dims{thickness, d.extent(1)};
    case 3: return Dims{thickness, d.extent(1), d.extent(2)};
    default: return Dims{thickness, d.extent(1), d.extent(2), d.extent(3)};
  }
}

template <class T>
const auto& compress_fn(const CompressorEntry& e) {
  if constexpr (std::is_same_v<T, float>)
    return e.compress_f32;
  else
    return e.compress_f64;
}

template <class T>
const auto& decompress_fn(const CompressorEntry& e) {
  if constexpr (std::is_same_v<T, float>)
    return e.decompress_f32;
  else
    return e.decompress_f64;
}

template <class T>
const auto& decompress_into_fn(const CompressorEntry& e) {
  if constexpr (std::is_same_v<T, float>)
    return e.decompress_into_f32;
  else
    return e.decompress_into_f64;
}

template <class T>
const auto& decompress_into_pool_fn(const CompressorEntry& e) {
  if constexpr (std::is_same_v<T, float>)
    return e.decompress_into_pool_f32;
  else
    return e.decompress_into_pool_f64;
}

/// Resolve the pool to run on: the caller's shared pool when provided,
/// otherwise a locally owned one with `workers` threads.
ThreadPool* resolve_pool(ThreadPool* shared, unsigned workers,
                         std::optional<ThreadPool>& owned) {
  if (shared) return shared;
  owned.emplace(workers ? workers
                        : std::max(1u, std::thread::hardware_concurrency()));
  return &*owned;
}

}  // namespace

template <class T>
std::vector<std::uint8_t> chunked_compress(const T* data, const Dims& dims,
                                           const ChunkedOptions& opt) {
  const CompressorEntry& comp = find_compressor(opt.compressor);

  std::size_t slab = opt.slab;
  if (slab == 0) {
    // Fixed chunk-count target: the slab geometry (and therefore the
    // archive bytes) must never depend on how many workers happen to be
    // available, only on the field shape.
    constexpr std::size_t kTargetChunks = 16;
    slab = std::max<std::size_t>(
        8, (dims.extent(0) + kTargetChunks - 1) / kTargetChunks);
  }
  slab = std::min(slab, dims.extent(0));
  const std::size_t nchunks = (dims.extent(0) + slab - 1) / slab;
  const std::size_t plane = dims.size() / dims.extent(0);

  std::optional<ThreadPool> owned;
  ThreadPool* pool = resolve_pool(opt.options.pool, opt.workers, owned);
  GenericOptions slab_opt = opt.options;
  // Intra-slab stages reuse the same workers — but only when slabs alone
  // cannot saturate the pool. Once there is at least one slab per worker,
  // nested fan-out adds queue-lock traffic without exposing new
  // parallelism, and under serving load it would steal continuation
  // slots from other jobs sharing the pool.
  slab_opt.pool = nchunks >= pool->size() ? nullptr : pool;

  std::vector<std::vector<std::uint8_t>> parts(nchunks);
  pool->parallel_for(nchunks, [&](std::size_t c) {
    const std::size_t z0 = c * slab;
    const std::size_t thick = std::min(slab, dims.extent(0) - z0);
    parts[c] = compress_fn<T>(comp)(data + z0 * plane,
                                    slab_dims(dims, thick), slab_opt);
  });

  ByteWriter w;
  w.put(kChunkedMagic);
  w.put(dtype_tag<T>());
  write_dims(w, dims);
  w.put_varint(slab);
  w.put_varint(nchunks);
  // Name length-prefixed so future compressors with longer names fit.
  w.put_varint(opt.compressor.size());
  for (char c : opt.compressor) w.put(static_cast<std::uint8_t>(c));
  for (const auto& p : parts) w.put_block(p);
  return w.take();
}

template <class T>
Field<T> chunked_decompress(std::span<const std::uint8_t> archive,
                            unsigned workers, ThreadPool* shared_pool) {
  if (archive.size() < 5) throw DecodeError("chunked archive too short");
  ByteReader r(archive);
  if (r.get<std::uint32_t>() != kChunkedMagic)
    throw DecodeError("not a chunked archive");
  if (r.get<std::uint8_t>() != dtype_tag<T>())
    throw DecodeError("chunked archive dtype mismatch");
  const Dims dims = read_dims(r);
  const std::size_t slab = static_cast<std::size_t>(r.get_varint());
  const std::size_t nchunks = static_cast<std::size_t>(r.get_varint());
  // The chunk geometry must be internally consistent before any slab is
  // decoded: every chunk spans `slab` leading planes except a short tail.
  if (slab == 0 || slab > dims.extent(0))
    throw DecodeError("chunked archive bad slab size");
  if (nchunks != (dims.extent(0) + slab - 1) / slab)
    throw DecodeError("chunked archive chunk count mismatch");
  const std::size_t name_len = static_cast<std::size_t>(r.get_varint());
  if (name_len > r.remaining())
    throw DecodeError("chunked archive name overruns buffer");
  const auto name_bytes = r.get_bytes(name_len);
  const std::string name(name_bytes.begin(), name_bytes.end());
  const CompressorEntry& comp = find_compressor(name);

  std::vector<std::span<const std::uint8_t>> parts(nchunks);
  for (auto& p : parts) p = r.get_block();

  Field<T> out(dims);
  const std::size_t plane = dims.size() / dims.extent(0);
  std::optional<ThreadPool> owned;
  ThreadPool* pool = resolve_pool(shared_pool, workers, owned);
  const auto& dec_into = decompress_into_fn<T>(comp);
  const auto& dec_into_pool = decompress_into_pool_fn<T>(comp);
  // Same saturation rule as the compress side: with fewer slabs than
  // workers, let each slab's internal stages fan out over the leftover
  // workers; once slabs cover the pool, nested fan-out is pure overhead.
  ThreadPool* intra = nchunks >= pool->size() ? nullptr : pool;
  pool->parallel_for(nchunks, [&](std::size_t c) {
    const std::size_t z0 = c * slab;
    const std::size_t thick = std::min(slab, dims.extent(0) - z0);
    if (intra && dec_into_pool) {
      dec_into_pool(parts[c], out.data() + z0 * plane, slab_dims(dims, thick),
                    intra);
      return;
    }
    if (dec_into) {
      // Decode straight into the slab's final position: no per-slab
      // temporary field and no copy. A shape mismatch throws inside.
      dec_into(parts[c], out.data() + z0 * plane, slab_dims(dims, thick));
      return;
    }
    const Field<T> dec = decompress_fn<T>(comp)(parts[c]);
    if (dec.dims() != slab_dims(dims, thick))
      throw DecodeError("chunk shape mismatch");
    std::copy(dec.data(), dec.data() + dec.size(), out.data() + z0 * plane);
  });
  return out;
}

template std::vector<std::uint8_t> chunked_compress<float>(
    const float*, const Dims&, const ChunkedOptions&);
template std::vector<std::uint8_t> chunked_compress<double>(
    const double*, const Dims&, const ChunkedOptions&);
template Field<float> chunked_decompress<float>(std::span<const std::uint8_t>,
                                                unsigned, ThreadPool*);
template Field<double> chunked_decompress<double>(std::span<const std::uint8_t>,
                                                  unsigned, ThreadPool*);

}  // namespace qip
