#pragma once

// LZB: byte-level LZ77 lossless codec with hash-chain matching and lazy
// parsing. Fills the pipeline role that ZSTD plays in the original
// SZ3/QoZ/HPEZ/MGARD implementations (paper Sec. I): a generic lossless
// pass over the entropy-coded quantization stream plus metadata.
//
// Substitution note (DESIGN.md Sec. 2): no zstd development headers are
// available offline, so the library ships its own backend. LZB is a
// strictly simpler coder (no FSE/entropy stage), so absolute ratios are
// slightly below ZSTD's, but it preserves the pipeline structure that the
// paper's quantization-index-prediction gains are measured against.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace qip {

/// Compress `input` into a self-describing buffer. Never fails; highly
/// incompressible input grows by a few bytes of framing at most per 64 KiB.
[[nodiscard]] std::vector<std::uint8_t> lzb_compress(
    std::span<const std::uint8_t> input);

/// Decompress a buffer produced by lzb_compress(). Throws DecodeError on
/// malformed input, or when the stream's declared output size exceeds
/// `max_output` — callers handling untrusted archives pass the largest
/// payload they are willing to materialize to defuse decompression bombs.
[[nodiscard]] std::vector<std::uint8_t> lzb_decompress(
    std::span<const std::uint8_t> input,
    std::uint64_t max_output = std::numeric_limits<std::uint64_t>::max());

}  // namespace qip
