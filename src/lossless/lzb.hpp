#pragma once

// LZB: byte-level LZ77 lossless codec with hash-chain matching and lazy
// parsing. Fills the pipeline role that ZSTD plays in the original
// SZ3/QoZ/HPEZ/MGARD implementations (paper Sec. I): a generic lossless
// pass over the entropy-coded quantization stream plus metadata.
//
// Substitution note (DESIGN.md Sec. 2): no zstd development headers are
// available offline, so the library ships its own backend. LZB is a
// strictly simpler coder (no FSE/entropy stage), so absolute ratios are
// slightly below ZSTD's, but it preserves the pipeline structure that the
// paper's quantization-index-prediction gains are measured against.
//
// Inputs above a fixed size threshold are emitted as independently
// compressed fixed-size blocks so both directions parallelize across
// blocks. The block size is a format constant (never worker-count-
// dependent), so the emitted bytes are identical no matter how many
// threads produced them; the decoder accepts both layouts.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace qip {

class ThreadPool;

/// Compress `input` into a self-describing buffer. Never fails; highly
/// incompressible input grows by a few bytes of framing at most per 64 KiB.
/// `pool` parallelizes block compression; the output bytes do not depend
/// on it.
[[nodiscard]] std::vector<std::uint8_t> lzb_compress(
    std::span<const std::uint8_t> input, ThreadPool* pool = nullptr);

/// Decompress a buffer produced by lzb_compress(). Throws DecodeError on
/// malformed input, or when the stream's declared output size exceeds
/// `max_output` — callers handling untrusted archives pass the largest
/// payload they are willing to materialize to defuse decompression bombs.
[[nodiscard]] std::vector<std::uint8_t> lzb_decompress(
    std::span<const std::uint8_t> input,
    std::uint64_t max_output = std::numeric_limits<std::uint64_t>::max(),
    ThreadPool* pool = nullptr);

}  // namespace qip
