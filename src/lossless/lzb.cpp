#include "lossless/lzb.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "simd/dispatch.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

// Bytes per block of the blocked layout, and the input size at which the
// encoder switches to it. Format constants: the split never depends on
// the worker count, so parallel output is byte-identical to serial.
constexpr std::size_t kBlockBytes = std::size_t{1} << 20;
constexpr std::size_t kBlockedThreshold = 2 * kBlockBytes;

constexpr int kMinMatch = 4;
constexpr int kHashBits = 17;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kWindow = 1u << 20;  // 1 MiB back-reference window
constexpr int kMaxChainDepth = 48;         // match-search effort bound

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Match {
  std::size_t length = 0;
  std::size_t offset = 0;
};

class Matcher {
 public:
  explicit Matcher(std::span<const std::uint8_t> data)
      : data_(data),
        head_(kHashSize, kNone),
        prev_(data.size(), kNone),
        // The match scan is the hot inner loop of the chain walk; resolve
        // the dispatched kernel (W-byte vector compares) once per stream.
        // Prefix lengths are exact either way, so tiers agree bit-for-bit.
        match_len_(
            (simd::byte_kernels() ? *simd::byte_kernels()
                                  : simd::scalar_byte_kernels())
                .match_len) {}

  /// Best match at position `pos`, or length 0.
  Match find(std::size_t pos) const {
    Match best;
    if (pos + kMinMatch > data_.size()) return best;
    const std::uint8_t* end = data_.data() + data_.size();
    std::size_t cand = head_[hash4(data_.data() + pos)];
    int depth = kMaxChainDepth;
    while (cand != kNone && depth-- > 0) {
      if (pos - cand > kWindow) break;
      const std::size_t len =
          match_len_(data_.data() + cand, data_.data() + pos, end);
      if (len > best.length) {
        best.length = len;
        best.offset = pos - cand;
      }
      cand = prev_[cand];
    }
    if (best.length < kMinMatch) best.length = 0;
    return best;
  }

  /// Register position `pos` in the hash chains.
  void insert(std::size_t pos) {
    if (pos + 4 > data_.size()) return;
    const std::uint32_t h = hash4(data_.data() + pos);
    prev_[pos] = head_[h];
    head_[h] = pos;
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};
  std::span<const std::uint8_t> data_;
  std::vector<std::size_t> head_;
  std::vector<std::size_t> prev_;
  std::size_t (*match_len_)(const std::uint8_t*, const std::uint8_t*,
                            const std::uint8_t*);
};

/// Compress one span with the sequence layout (no framing decisions).
std::vector<std::uint8_t> compress_one(std::span<const std::uint8_t> input) {
  ByteWriter out;
  out.put_varint(input.size());
  if (input.empty()) return out.take();

  Matcher matcher(input);
  std::size_t pos = 0;
  std::size_t lit_start = 0;

  auto emit = [&](std::size_t match_len, std::size_t offset) {
    // Sequence = (literal run, optional match). match_len==0 terminates.
    out.put_varint(pos - lit_start);
    out.put_bytes(input.subspan(lit_start, pos - lit_start));
    out.put_varint(match_len);
    if (match_len) out.put_varint(offset);
  };

  while (pos < input.size()) {
    Match m = matcher.find(pos);
    if (m.length == 0) {
      matcher.insert(pos);
      ++pos;
      continue;
    }
    // One-step lazy parsing a la gzip: prefer a strictly longer match that
    // starts one byte later.
    if (pos + 1 < input.size()) {
      matcher.insert(pos);
      const Match next = matcher.find(pos + 1);
      if (next.length > m.length + 1) {
        ++pos;
        m = next;
      }
    } else {
      matcher.insert(pos);
    }
    emit(m.length, m.offset);
    // Index the covered positions (sparsely for long matches to bound cost).
    const std::size_t match_end = pos + m.length;
    const std::size_t step = m.length > 4096 ? 16 : 1;
    for (std::size_t p = pos + 1; p < match_end; p += step) matcher.insert(p);
    pos = match_end;
    lit_start = pos;
  }
  emit(0, 0);  // trailing literals + terminator
  return out.take();
}

/// Decode one sequence-layout stream of exactly `expect` bytes into `dst`.
/// Used for the fixed-size blocks of the blocked layout, where the output
/// size is known up front and the buffer is caller-owned.
void decompress_one_into(std::span<const std::uint8_t> input,
                         std::uint8_t* dst, std::size_t expect) {
  ByteReader in(input);
  const std::uint64_t raw_size = in.get_varint();
  if (raw_size != expect) throw DecodeError("lzb block size mismatch");
  std::size_t produced = 0;
  while (produced < expect) {
    const std::uint64_t lit_len = in.get_varint();
    if (lit_len > expect - produced) throw DecodeError("lzb literal overrun");
    const auto lits = in.get_bytes(static_cast<std::size_t>(lit_len));
    std::copy(lits.begin(), lits.end(), dst + produced);
    produced += static_cast<std::size_t>(lit_len);

    const std::uint64_t match_len = in.get_varint();
    if (match_len == 0) {
      if (produced != expect) throw DecodeError("lzb premature terminator");
      break;
    }
    const std::uint64_t offset = in.get_varint();
    if (offset == 0 || offset > produced) throw DecodeError("lzb bad offset");
    if (match_len > expect - produced) throw DecodeError("lzb match overrun");
    // Overlapping copies are the point (run-length shapes), so copy bytewise.
    std::size_t src = produced - static_cast<std::size_t>(offset);
    for (std::uint64_t i = 0; i < match_len; ++i) dst[produced++] = dst[src++];
  }
  if (produced != expect) throw DecodeError("lzb size mismatch");
}

std::vector<std::uint8_t> decompress_legacy(std::span<const std::uint8_t> input,
                                            std::uint64_t max_output) {
  ByteReader in(input);
  const std::uint64_t raw_size = in.get_varint();
  if (raw_size > max_output) throw DecodeError("lzb output exceeds limit");
  std::vector<std::uint8_t> out;
  // A hostile header can claim any size; cap the speculative reservation
  // so the real allocation grows only as decoded sequences justify it.
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(raw_size, std::max<std::uint64_t>(
                                            input.size() * 4, 1u << 16))));

  while (out.size() < raw_size) {
    // All length checks are written as `len > raw_size - out.size()` so
    // hostile 64-bit lengths cannot wrap the comparison.
    const std::uint64_t lit_len = in.get_varint();
    if (lit_len > raw_size - out.size())
      throw DecodeError("lzb literal overrun");
    const auto lits = in.get_bytes(static_cast<std::size_t>(lit_len));
    out.insert(out.end(), lits.begin(), lits.end());

    const std::uint64_t match_len = in.get_varint();
    if (match_len == 0) {
      if (out.size() != raw_size) throw DecodeError("lzb premature terminator");
      break;
    }
    const std::uint64_t offset = in.get_varint();
    if (offset == 0 || offset > out.size()) throw DecodeError("lzb bad offset");
    if (match_len > raw_size - out.size())
      throw DecodeError("lzb match overrun");
    // Overlapping copies are the point (run-length shapes), so copy bytewise.
    std::size_t src = out.size() - static_cast<std::size_t>(offset);
    for (std::uint64_t i = 0; i < match_len; ++i) out.push_back(out[src++]);
  }
  if (out.size() != raw_size) throw DecodeError("lzb size mismatch");
  return out;
}

}  // namespace

std::vector<std::uint8_t> lzb_compress(std::span<const std::uint8_t> input,
                                       ThreadPool* pool) {
  if (input.size() < kBlockedThreshold) return compress_one(input);

  // Blocked layout. The leading varint 0 cannot open a legacy stream of
  // this size (a legacy 0 raw size means "empty input, nothing follows"),
  // so it doubles as the format sentinel.
  ByteWriter out;
  out.put_varint(0);
  out.put_varint(1);  // layout version
  out.put_varint(input.size());
  out.put_varint(kBlockBytes);
  const std::size_t nblocks = (input.size() + kBlockBytes - 1) / kBlockBytes;
  std::vector<std::vector<std::uint8_t>> parts(nblocks);
  auto compress_block = [&](std::size_t b) {
    const std::size_t lo = b * kBlockBytes;
    const std::size_t cnt = std::min(kBlockBytes, input.size() - lo);
    parts[b] = compress_one(input.subspan(lo, cnt));
  };
  if (pool) {
    pool->parallel_for(nblocks, compress_block);
  } else {
    for (std::size_t b = 0; b < nblocks; ++b) compress_block(b);
  }
  for (const auto& p : parts) out.put_block(p);
  return out.take();
}

std::vector<std::uint8_t> lzb_decompress(std::span<const std::uint8_t> input,
                                         std::uint64_t max_output,
                                         ThreadPool* pool) {
  ByteReader in(input);
  const std::uint64_t head = in.get_varint();
  if (head != 0 || in.remaining() == 0) return decompress_legacy(input, max_output);

  // Blocked layout.
  const std::uint64_t version = in.get_varint();
  if (version != 1) throw DecodeError("lzb: unknown blocked version");
  const std::uint64_t raw_size = in.get_varint();
  if (raw_size > max_output) throw DecodeError("lzb output exceeds limit");
  if (raw_size == 0) throw DecodeError("lzb: blocked stream without data");
  const std::uint64_t block_bytes = in.get_varint();
  if (block_bytes == 0) throw DecodeError("lzb: zero block size");
  const std::uint64_t nblocks = (raw_size + block_bytes - 1) / block_bytes;
  // Each block carries at least a one-byte length prefix; this bounds the
  // output allocation by the input size before we materialize anything.
  if (nblocks > in.remaining())
    throw DecodeError("lzb: block count exceeds buffer");

  std::vector<std::span<const std::uint8_t>> parts(
      static_cast<std::size_t>(nblocks));
  for (auto& p : parts) p = in.get_block();

  std::vector<std::uint8_t> out(static_cast<std::size_t>(raw_size));
  auto decompress_block = [&](std::size_t b) {
    const std::size_t lo = b * static_cast<std::size_t>(block_bytes);
    const std::size_t cnt =
        std::min(static_cast<std::size_t>(block_bytes), out.size() - lo);
    decompress_one_into(parts[b], out.data() + lo, cnt);
  };
  if (pool) {
    pool->parallel_for(parts.size(), decompress_block);
  } else {
    for (std::size_t b = 0; b < parts.size(); ++b) decompress_block(b);
  }
  return out;
}

}  // namespace qip
