#include "lossless/lzb.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace qip {
namespace {

constexpr int kMinMatch = 4;
constexpr int kHashBits = 17;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kWindow = 1u << 20;  // 1 MiB back-reference window
constexpr int kMaxChainDepth = 48;         // match-search effort bound

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                const std::uint8_t* end) {
  const std::uint8_t* start = b;
  while (b + 8 <= end) {
    std::uint64_t x, y;
    std::memcpy(&x, a, 8);
    std::memcpy(&y, b, 8);
    const std::uint64_t diff = x ^ y;
    if (diff) return static_cast<std::size_t>(b - start) +
                     (std::countr_zero(diff) >> 3);
    a += 8;
    b += 8;
  }
  while (b < end && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(b - start);
}

struct Match {
  std::size_t length = 0;
  std::size_t offset = 0;
};

class Matcher {
 public:
  explicit Matcher(std::span<const std::uint8_t> data)
      : data_(data),
        head_(kHashSize, kNone),
        prev_(data.size(), kNone) {}

  /// Best match at position `pos`, or length 0.
  Match find(std::size_t pos) const {
    Match best;
    if (pos + kMinMatch > data_.size()) return best;
    const std::uint8_t* end = data_.data() + data_.size();
    std::size_t cand = head_[hash4(data_.data() + pos)];
    int depth = kMaxChainDepth;
    while (cand != kNone && depth-- > 0) {
      if (pos - cand > kWindow) break;
      const std::size_t len =
          match_length(data_.data() + cand, data_.data() + pos, end);
      if (len > best.length) {
        best.length = len;
        best.offset = pos - cand;
      }
      cand = prev_[cand];
    }
    if (best.length < kMinMatch) best.length = 0;
    return best;
  }

  /// Register position `pos` in the hash chains.
  void insert(std::size_t pos) {
    if (pos + 4 > data_.size()) return;
    const std::uint32_t h = hash4(data_.data() + pos);
    prev_[pos] = head_[h];
    head_[h] = pos;
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};
  std::span<const std::uint8_t> data_;
  std::vector<std::size_t> head_;
  std::vector<std::size_t> prev_;
};

}  // namespace

std::vector<std::uint8_t> lzb_compress(std::span<const std::uint8_t> input) {
  ByteWriter out;
  out.put_varint(input.size());
  if (input.empty()) return out.take();

  Matcher matcher(input);
  std::size_t pos = 0;
  std::size_t lit_start = 0;

  auto emit = [&](std::size_t match_len, std::size_t offset) {
    // Sequence = (literal run, optional match). match_len==0 terminates.
    out.put_varint(pos - lit_start);
    out.put_bytes(input.subspan(lit_start, pos - lit_start));
    out.put_varint(match_len);
    if (match_len) out.put_varint(offset);
  };

  while (pos < input.size()) {
    Match m = matcher.find(pos);
    if (m.length == 0) {
      matcher.insert(pos);
      ++pos;
      continue;
    }
    // One-step lazy parsing a la gzip: prefer a strictly longer match that
    // starts one byte later.
    if (pos + 1 < input.size()) {
      matcher.insert(pos);
      const Match next = matcher.find(pos + 1);
      if (next.length > m.length + 1) {
        ++pos;
        m = next;
      }
    } else {
      matcher.insert(pos);
    }
    emit(m.length, m.offset);
    // Index the covered positions (sparsely for long matches to bound cost).
    const std::size_t match_end = pos + m.length;
    const std::size_t step = m.length > 4096 ? 16 : 1;
    for (std::size_t p = pos + 1; p < match_end; p += step) matcher.insert(p);
    pos = match_end;
    lit_start = pos;
  }
  emit(0, 0);  // trailing literals + terminator
  return out.take();
}

std::vector<std::uint8_t> lzb_decompress(std::span<const std::uint8_t> input,
                                         std::uint64_t max_output) {
  ByteReader in(input);
  const std::uint64_t raw_size = in.get_varint();
  if (raw_size > max_output) throw DecodeError("lzb output exceeds limit");
  std::vector<std::uint8_t> out;
  // A hostile header can claim any size; cap the speculative reservation
  // so the real allocation grows only as decoded sequences justify it.
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(raw_size, std::max<std::uint64_t>(
                                            input.size() * 4, 1u << 16))));

  while (out.size() < raw_size) {
    // All length checks are written as `len > raw_size - out.size()` so
    // hostile 64-bit lengths cannot wrap the comparison.
    const std::uint64_t lit_len = in.get_varint();
    if (lit_len > raw_size - out.size())
      throw DecodeError("lzb literal overrun");
    const auto lits = in.get_bytes(static_cast<std::size_t>(lit_len));
    out.insert(out.end(), lits.begin(), lits.end());

    const std::uint64_t match_len = in.get_varint();
    if (match_len == 0) {
      if (out.size() != raw_size) throw DecodeError("lzb premature terminator");
      break;
    }
    const std::uint64_t offset = in.get_varint();
    if (offset == 0 || offset > out.size()) throw DecodeError("lzb bad offset");
    if (match_len > raw_size - out.size())
      throw DecodeError("lzb match overrun");
    // Overlapping copies are the point (run-length shapes), so copy bytewise.
    std::size_t src = out.size() - static_cast<std::size_t>(offset);
    for (std::uint64_t i = 0; i < match_len; ++i) out.push_back(out[src++]);
  }
  if (out.size() != raw_size) throw DecodeError("lzb size mismatch");
  return out;
}

}  // namespace qip
